//! Always-on run telemetry: a lock-free registry of typed counters and
//! log-bucketed histograms, a per-round flight recorder, and crash
//! postmortems.
//!
//! Every engine (serial, pooled-parallel, α-synchronizer), the reliable
//! transport, and the fault injector can share one [`Telemetry`] registry
//! through an `Arc`. Writers never lock: counters and histogram buckets
//! are per-shard relaxed atomics (one shard per pool worker, shard 0 for
//! the serial engine and the synchronizer, `node % shards` for transport
//! ports), aggregated only when a reader calls [`Telemetry::snapshot`].
//! The engines batch their updates to *one* [`TelemetryHandle::on_round`]
//! call per worker per round — deltas are computed against the metrics
//! the engines already maintain — so steady-state overhead is a handful
//! of relaxed atomic adds per round, cheap enough to leave on by default.
//!
//! Telemetry carries the same observational-freeness guarantee as the
//! profiler: attaching it changes no protocol-visible output (results,
//! rounds, metrics, traces) on any engine. `tests/telemetry.rs` asserts
//! this bit for bit, including faulty + reliable runs.
//!
//! The flight recorder ([`Telemetry::finish_round`]) keeps the last
//! [`Telemetry::ring_capacity`] rounds of per-round deltas in a ring.
//! On `NodePanic`, `RoundLimit`, or abort the CLI dumps the ring plus a
//! full counter snapshot as `postmortem.json`
//! ([`Telemetry::postmortem_json`] / [`Postmortem::parse`]); the watch
//! thread persists the same snapshot periodically so even a `SIGKILL`/
//! Ctrl-C leaves the last few seconds of evidence on disk.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::metrics::NetMetrics;

/// Version stamped into every JSON artifact this workspace emits
/// (`BENCH_*.json`, profile reports, trace-stats, Perfetto traces,
/// postmortems). Consumers such as `bench_guard` reject other versions
/// instead of silently comparing mismatched shapes.
pub const SCHEMA_VERSION: u32 = 1;

/// A round is flagged as a straggler/anomaly when a per-round quantity
/// exceeds `STRAGGLER_FACTOR ×` its robust baseline (the median).
pub const STRAGGLER_FACTOR: u64 = 4;

/// Number of log₂ buckets per histogram (bucket `i` holds values whose
/// bit length is `i`; bucket 0 holds the value 0).
const HIST_BUCKETS: usize = 65;

/// Typed counters of the registry. Labels are stable snake_case strings
/// used in snapshots and postmortems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Rounds (or synchronizer pulses) committed.
    Rounds,
    /// Messages accepted for delivery.
    Messages,
    /// Total payload bits of those messages.
    MessageBits,
    /// Messages routed inside one pool shard.
    IntraShardMessages,
    /// Messages routed across the worker lane mesh.
    CrossShardMessages,
    /// Node `round()` invocations (idle-skipped nodes excluded).
    NodesStepped,
    /// Messages delivered into inboxes.
    InboxMessages,
    /// Fault injector: messages dropped.
    FaultsDropped,
    /// Fault injector: messages bit-corrupted.
    FaultsCorrupted,
    /// Fault injector: messages duplicated.
    FaultsDuplicated,
    /// Fault injector: messages delayed.
    FaultsDelayed,
    /// Reliable transport: data frames sent (first transmission).
    FramesSent,
    /// Reliable transport: retransmitted frames.
    Retransmits,
    /// Reliable transport: pure-ack frames.
    AckOnlyFrames,
    /// Reliable transport: duplicate frames discarded.
    FramesDeduped,
    /// Reliable transport: frames dropped on checksum mismatch.
    ChecksumDrops,
    /// α-synchronizer: control (safe/ack) messages.
    ControlMessages,
    /// Rounds flagged as stragglers/anomalies by the flight recorder.
    StragglerRounds,
    /// Query server: individual queries answered.
    QueriesServed,
    /// Query server: query batches (frames) processed.
    QueryBatches,
    /// Query server: snapshot versions published (epoch swaps).
    SnapshotSwaps,
    /// Query server: per-source contribution vectors replayed from the
    /// LRU cache during an incremental recompute.
    SourceCacheHits,
    /// Query server: per-source contribution vectors recomputed (cache
    /// miss or source affected by the mutation).
    SourceCacheMisses,
    /// Query server: malformed frames / handshakes from clients (each one
    /// answered with an `ERROR` frame and a dropped connection).
    MalformedFrames,
    /// Total per-node protocol-state bytes at the end of a run (recorded
    /// once per run by the driver/leader, not per round).
    StateBytes,
}

/// All counters, in label order. Keep in sync with [`Counter`].
pub const COUNTERS: [(Counter, &str); 25] = [
    (Counter::Rounds, "rounds"),
    (Counter::Messages, "messages"),
    (Counter::MessageBits, "message_bits"),
    (Counter::IntraShardMessages, "intra_shard_messages"),
    (Counter::CrossShardMessages, "cross_shard_messages"),
    (Counter::NodesStepped, "nodes_stepped"),
    (Counter::InboxMessages, "inbox_messages"),
    (Counter::FaultsDropped, "faults_dropped"),
    (Counter::FaultsCorrupted, "faults_corrupted"),
    (Counter::FaultsDuplicated, "faults_duplicated"),
    (Counter::FaultsDelayed, "faults_delayed"),
    (Counter::FramesSent, "frames_sent"),
    (Counter::Retransmits, "retransmits"),
    (Counter::AckOnlyFrames, "ack_only_frames"),
    (Counter::FramesDeduped, "frames_deduped"),
    (Counter::ChecksumDrops, "checksum_drops"),
    (Counter::ControlMessages, "control_messages"),
    (Counter::StragglerRounds, "straggler_rounds"),
    (Counter::QueriesServed, "queries_served"),
    (Counter::QueryBatches, "query_batches"),
    (Counter::SnapshotSwaps, "snapshot_swaps"),
    (Counter::SourceCacheHits, "source_cache_hits"),
    (Counter::SourceCacheMisses, "source_cache_misses"),
    (Counter::MalformedFrames, "malformed_frames"),
    (Counter::StateBytes, "state_bytes"),
];

const NUM_COUNTERS: usize = COUNTERS.len();

/// Typed histograms of the registry (log₂-bucketed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HistogramId {
    /// Messages delivered into inboxes per round.
    InboxDepth,
    /// Messages staged per round.
    RoundMessages,
    /// Queries per client batch frame (query server).
    QueryBatchSize,
}

const HISTOGRAMS: [(HistogramId, &str); 3] = [
    (HistogramId::InboxDepth, "inbox_depth"),
    (HistogramId::RoundMessages, "round_messages"),
    (HistogramId::QueryBatchSize, "query_batch_size"),
];

const NUM_HISTOGRAMS: usize = HISTOGRAMS.len();

/// One writer shard: counters plus histogram buckets, all relaxed
/// atomics. Each pool worker owns one shard index, so concurrent writers
/// touch disjoint cache lines in the common case.
struct Shard {
    counters: Vec<AtomicU64>,
    hist: Vec<AtomicU64>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            counters: (0..NUM_COUNTERS).map(|_| AtomicU64::new(0)).collect(),
            hist: (0..NUM_HISTOGRAMS * HIST_BUCKETS)
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }
}

/// One round's worth of flight-recorder deltas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRecord {
    /// Round number.
    pub round: u64,
    /// Messages staged in this round.
    pub messages: u64,
    /// Payload bits staged in this round.
    pub bits: u64,
    /// Nodes stepped in this round.
    pub nodes_stepped: u64,
    /// Transport retransmissions during this round.
    pub retransmits: u64,
    /// Faults injected (dropped + corrupted + duplicated + delayed).
    pub faults: u64,
    /// True when the round's message load exceeded the robust baseline
    /// (median × [`STRAGGLER_FACTOR`]) over the recorder window.
    pub straggler: bool,
}

/// Flight-recorder state behind one per-round mutex acquisition.
struct Recorder {
    last: [u64; NUM_COUNTERS],
    records: VecDeque<RoundRecord>,
    capacity: usize,
}

/// Aggregated point-in-time view of every counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    values: [u64; NUM_COUNTERS],
}

impl TelemetrySnapshot {
    /// The aggregated value of one counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.values[c as usize]
    }

    /// Iterates `(label, value)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        COUNTERS
            .iter()
            .map(move |&(c, label)| (label, self.values[c as usize]))
    }
}

/// The shared telemetry registry. Cheap to clone behind an `Arc`; all
/// write paths are lock-free (the flight-recorder ring takes its mutex
/// once per round, never per message).
pub struct Telemetry {
    shards: Vec<Shard>,
    /// Highest round committed so far plus one (a live progress gauge).
    round_gauge: AtomicU64,
    /// Provisioned phase starts `[counting, reduce, broadcast, agg]`;
    /// `u64::MAX` while unset (adaptive runs never set them).
    schedule: [AtomicU64; 4],
    recorder: Mutex<Recorder>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("shards", &self.shards.len())
            .field("round", &self.round())
            .finish()
    }
}

impl Telemetry {
    /// Creates a registry with `shards` writer shards (≥ 1) and a flight
    /// recorder retaining the last `ring` rounds (≥ 1).
    pub fn new(shards: usize, ring: usize) -> Self {
        let shards = shards.max(1);
        Telemetry {
            shards: (0..shards).map(|_| Shard::new()).collect(),
            round_gauge: AtomicU64::new(0),
            schedule: [
                AtomicU64::new(u64::MAX),
                AtomicU64::new(u64::MAX),
                AtomicU64::new(u64::MAX),
                AtomicU64::new(u64::MAX),
            ],
            recorder: Mutex::new(Recorder {
                last: [0; NUM_COUNTERS],
                records: VecDeque::new(),
                capacity: ring.max(1),
            }),
        }
    }

    /// Number of writer shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Flight-recorder window size in rounds.
    pub fn ring_capacity(&self) -> usize {
        self.recorder.lock().map_or(0, |r| r.capacity)
    }

    /// Adds `n` to a counter on `shard` (wrapped modulo the shard count).
    #[inline]
    pub fn add(&self, shard: usize, c: Counter, n: u64) {
        if n > 0 {
            self.shards[shard % self.shards.len()].counters[c as usize]
                .fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records `value` into a log₂-bucketed histogram on `shard`.
    #[inline]
    pub fn record(&self, shard: usize, h: HistogramId, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.shards[shard % self.shards.len()].hist[h as usize * HIST_BUCKETS + bucket]
            .fetch_add(1, Ordering::Relaxed);
    }

    /// The live round gauge: highest committed round + 1.
    pub fn round(&self) -> u64 {
        self.round_gauge.load(Ordering::Relaxed)
    }

    /// Publishes the provisioned phase schedule so live consumers can
    /// label the current phase.
    pub fn set_schedule(
        &self,
        counting_start: u64,
        reduce_start: u64,
        broadcast_start: u64,
        agg_start: u64,
    ) {
        for (slot, v) in
            self.schedule
                .iter()
                .zip([counting_start, reduce_start, broadcast_start, agg_start])
        {
            slot.store(v, Ordering::Relaxed);
        }
    }

    /// The phase label for `round` under the published schedule, or `"-"`
    /// when no schedule was published (adaptive runs).
    pub fn phase_label(&self, round: u64) -> &'static str {
        let bounds: Vec<u64> = self
            .schedule
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .collect();
        if bounds[0] == u64::MAX {
            return "-";
        }
        match round {
            r if r < bounds[0] => "A:tree",
            r if r < bounds[1] => "B:counting",
            r if r < bounds[2] => "C1:reduce",
            r if r < bounds[3] => "C2:bcast",
            _ => "D:aggregation",
        }
    }

    /// Aggregates every shard into one snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut values = [0u64; NUM_COUNTERS];
        for shard in &self.shards {
            for (i, v) in values.iter_mut().enumerate() {
                *v += shard.counters[i].load(Ordering::Relaxed);
            }
        }
        TelemetrySnapshot { values }
    }

    /// Aggregated buckets of one histogram (index = bit length of the
    /// recorded value).
    pub fn histogram(&self, h: HistogramId) -> Vec<u64> {
        let mut out = vec![0u64; HIST_BUCKETS];
        for shard in &self.shards {
            for (i, v) in out.iter_mut().enumerate() {
                *v += shard.hist[h as usize * HIST_BUCKETS + i].load(Ordering::Relaxed);
            }
        }
        out
    }

    /// Commits one round into the flight recorder: snapshots the
    /// counters, derives the round's deltas, runs the live straggler
    /// check (message load vs median × k over the window), and advances
    /// the round gauge. Called exactly once per committed round by
    /// whichever thread coordinates the round (serial loop, pool
    /// orchestrator, free-running barrier leader, synchronizer pulse
    /// loop).
    pub fn finish_round(&self, round: u64) {
        self.add(0, Counter::Rounds, 1);
        let snap = self.snapshot();
        let Ok(mut rec) = self.recorder.lock() else {
            return;
        };
        let delta = |c: Counter| snap.values[c as usize].saturating_sub(rec.last[c as usize]);
        let messages = delta(Counter::Messages);
        let faults = delta(Counter::FaultsDropped)
            + delta(Counter::FaultsCorrupted)
            + delta(Counter::FaultsDuplicated)
            + delta(Counter::FaultsDelayed);
        // Robust baseline over the recorder window: median of the
        // recent per-round message loads.
        let mut loads: Vec<u64> = rec.records.iter().map(|r| r.messages).collect();
        loads.sort_unstable();
        let median = loads.get(loads.len() / 2).copied().unwrap_or(0);
        let straggler =
            loads.len() >= 8 && median > 0 && messages > median.saturating_mul(STRAGGLER_FACTOR);
        let record = RoundRecord {
            round,
            messages,
            bits: delta(Counter::MessageBits),
            nodes_stepped: delta(Counter::NodesStepped),
            retransmits: delta(Counter::Retransmits),
            faults,
            straggler,
        };
        rec.last = snap.values;
        if rec.records.len() == rec.capacity {
            rec.records.pop_front();
        }
        rec.records.push_back(record);
        drop(rec);
        if straggler {
            self.add(0, Counter::StragglerRounds, 1);
            // The counter moved; keep the recorder's cumulative view in
            // step so the next delta does not misattribute it.
            if let Ok(mut rec) = self.recorder.lock() {
                rec.last[Counter::StragglerRounds as usize] += 1;
            }
        }
        self.round_gauge.store(round + 1, Ordering::Relaxed);
    }

    /// The flight recorder's retained rounds, oldest first.
    pub fn recent_rounds(&self) -> Vec<RoundRecord> {
        self.recorder
            .lock()
            .map_or(Vec::new(), |r| r.records.iter().cloned().collect())
    }

    /// Renders the full postmortem JSON document: reason, round gauge,
    /// aggregated counters, histograms, and the flight-recorder ring.
    pub fn postmortem_json(&self, reason: &str) -> String {
        let snap = self.snapshot();
        let mut out = String::with_capacity(1 << 12);
        let _ = write!(
            out,
            "{{\"schema_version\":{SCHEMA_VERSION},\"reason\":\"{}\",\"round\":{}",
            escape_json(reason),
            self.round()
        );
        out.push_str(",\"counters\":{");
        for (i, (label, value)) in snap.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{label}\":{value}");
        }
        out.push_str("},\"histograms\":{");
        for (i, &(h, label)) in HISTOGRAMS.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{label}\":[");
            for (j, bucket) in self.histogram(h).iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{bucket}");
            }
            out.push(']');
        }
        out.push_str("},\"recent_rounds\":[");
        for (i, r) in self.recent_rounds().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"round\":{},\"messages\":{},\"bits\":{},\"nodes_stepped\":{},\
                 \"retransmits\":{},\"faults\":{},\"straggler\":{}}}",
                r.round, r.messages, r.bits, r.nodes_stepped, r.retransmits, r.faults, r.straggler
            );
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string for embedding in a JSON document.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Per-engine-site writer handle: remembers the cumulative metric values
/// it last reported so each round contributes exactly its delta, however
/// many workers share the registry.
#[derive(Debug)]
pub struct TelemetryHandle {
    tel: std::sync::Arc<Telemetry>,
    shard: usize,
    last_messages: u64,
    last_bits: u64,
    last_faults: [u64; 4],
}

impl TelemetryHandle {
    /// Creates a handle writing into `shard` of `tel`.
    pub fn new(tel: std::sync::Arc<Telemetry>, shard: usize) -> Self {
        TelemetryHandle {
            tel,
            shard,
            last_messages: 0,
            last_bits: 0,
            last_faults: [0; 4],
        }
    }

    /// The shared registry behind this handle.
    pub fn registry(&self) -> &std::sync::Arc<Telemetry> {
        &self.tel
    }

    /// Reports one round of this writer's activity: message/bit/fault
    /// deltas are derived from the cumulative `metrics` the engine
    /// already maintains; per-round quantities are passed directly.
    #[allow(clippy::too_many_arguments)]
    pub fn on_round(
        &mut self,
        metrics: &NetMetrics,
        nodes_stepped: u64,
        inbox_messages: u64,
        intra: u64,
        cross: u64,
    ) {
        let t = &self.tel;
        let s = self.shard;
        let messages = metrics.total_messages.saturating_sub(self.last_messages);
        let bits = metrics.total_bits.saturating_sub(self.last_bits);
        self.last_messages = metrics.total_messages;
        self.last_bits = metrics.total_bits;
        t.add(s, Counter::Messages, messages);
        t.add(s, Counter::MessageBits, bits);
        t.add(s, Counter::NodesStepped, nodes_stepped);
        t.add(s, Counter::InboxMessages, inbox_messages);
        t.add(s, Counter::IntraShardMessages, intra);
        t.add(s, Counter::CrossShardMessages, cross);
        let faults = [
            metrics.faults_dropped,
            metrics.faults_corrupted,
            metrics.faults_duplicated,
            metrics.faults_delayed,
        ];
        for (i, (&now, c)) in faults
            .iter()
            .zip([
                Counter::FaultsDropped,
                Counter::FaultsCorrupted,
                Counter::FaultsDuplicated,
                Counter::FaultsDelayed,
            ])
            .enumerate()
        {
            t.add(s, c, now.saturating_sub(self.last_faults[i]));
            self.last_faults[i] = now;
        }
        t.record(s, HistogramId::InboxDepth, inbox_messages);
        t.record(s, HistogramId::RoundMessages, messages);
    }
}

/// A parsed postmortem document (the subset round-trip tests and CI
/// validation care about; histograms are carried but not re-validated).
#[derive(Debug, Clone, PartialEq)]
pub struct Postmortem {
    /// Artifact schema version.
    pub schema_version: u64,
    /// Why the dump happened (error display or `"in_progress"`).
    pub reason: String,
    /// Round gauge at dump time.
    pub round: u64,
    /// Aggregated `(label, value)` counters.
    pub counters: Vec<(String, u64)>,
    /// The flight-recorder window, oldest first.
    pub recent_rounds: Vec<RoundRecord>,
}

impl Postmortem {
    /// Parses a postmortem document produced by
    /// [`Telemetry::postmortem_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem, including
    /// an unsupported `schema_version`.
    pub fn parse(text: &str) -> Result<Postmortem, String> {
        let value = mini_json::parse(text)?;
        let obj = value.as_object()?;
        let schema_version = obj.u64("schema_version")?;
        if schema_version != SCHEMA_VERSION as u64 {
            return Err(format!(
                "unsupported schema_version {schema_version} (expected {SCHEMA_VERSION})"
            ));
        }
        let counters = obj
            .get("counters")?
            .as_object()?
            .fields
            .iter()
            .map(|(k, v)| Ok((k.clone(), v.as_u64()?)))
            .collect::<Result<Vec<_>, String>>()?;
        let recent_rounds = obj
            .get("recent_rounds")?
            .as_array()?
            .iter()
            .map(|v| {
                let r = v.as_object()?;
                Ok(RoundRecord {
                    round: r.u64("round")?,
                    messages: r.u64("messages")?,
                    bits: r.u64("bits")?,
                    nodes_stepped: r.u64("nodes_stepped")?,
                    retransmits: r.u64("retransmits")?,
                    faults: r.u64("faults")?,
                    straggler: r.get("straggler")?.as_bool()?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Postmortem {
            schema_version,
            reason: obj.get("reason")?.as_str()?.to_string(),
            round: obj.u64("round")?,
            counters,
            recent_rounds,
        })
    }
}

/// Minimal recursive JSON reader for postmortem validation: objects,
/// arrays, unsigned integers, strings (with the escapes the encoder
/// emits), and booleans. Not a general parser — anything else is
/// rejected loudly.
mod mini_json {
    pub enum Value {
        Num(u64),
        Str(String),
        Bool(bool),
        Arr(Vec<Value>),
        Obj(Object),
    }

    pub struct Object {
        pub fields: Vec<(String, Value)>,
    }

    impl Object {
        pub fn get(&self, key: &str) -> Result<&Value, String> {
            self.fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field {key:?}"))
        }

        pub fn u64(&self, key: &str) -> Result<u64, String> {
            self.get(key)?.as_u64()
        }
    }

    impl Value {
        pub fn as_u64(&self) -> Result<u64, String> {
            match self {
                Value::Num(n) => Ok(*n),
                _ => Err("expected number".into()),
            }
        }

        pub fn as_str(&self) -> Result<&str, String> {
            match self {
                Value::Str(s) => Ok(s),
                _ => Err("expected string".into()),
            }
        }

        pub fn as_bool(&self) -> Result<bool, String> {
            match self {
                Value::Bool(b) => Ok(*b),
                _ => Err("expected bool".into()),
            }
        }

        pub fn as_array(&self) -> Result<&[Value], String> {
            match self {
                Value::Arr(a) => Ok(a),
                _ => Err("expected array".into()),
            }
        }

        pub fn as_object(&self) -> Result<&Object, String> {
            match self {
                Value::Obj(o) => Ok(o),
                _ => Err("expected object".into()),
            }
        }
    }

    struct Cursor<'a> {
        s: &'a [u8],
        pos: usize,
    }

    impl Cursor<'_> {
        fn skip_ws(&mut self) {
            while matches!(self.s.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn peek(&mut self) -> Option<u8> {
            self.skip_ws();
            self.s.get(self.pos).copied()
        }

        fn eat(&mut self, c: u8) -> Result<(), String> {
            if self.peek() == Some(c) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected {:?} at byte {}", c as char, self.pos))
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                match self.s.get(self.pos).copied() {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.s.get(self.pos).copied() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'u') => {
                                let hex = self
                                    .s
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                                let code =
                                    u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                                out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                                self.pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Copy the full UTF-8 sequence starting here.
                        let rest = &self.s[self.pos..];
                        let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                        let c = s.chars().next().ok_or("unterminated string")?;
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'{') => {
                    self.eat(b'{')?;
                    let mut fields = Vec::new();
                    if self.peek() == Some(b'}') {
                        self.eat(b'}')?;
                        return Ok(Value::Obj(Object { fields }));
                    }
                    loop {
                        let key = self.string()?;
                        self.eat(b':')?;
                        fields.push((key, self.value()?));
                        match self.peek() {
                            Some(b',') => self.eat(b',')?,
                            Some(b'}') => {
                                self.eat(b'}')?;
                                return Ok(Value::Obj(Object { fields }));
                            }
                            _ => return Err("malformed object".into()),
                        }
                    }
                }
                Some(b'[') => {
                    self.eat(b'[')?;
                    let mut items = Vec::new();
                    if self.peek() == Some(b']') {
                        self.eat(b']')?;
                        return Ok(Value::Arr(items));
                    }
                    loop {
                        items.push(self.value()?);
                        match self.peek() {
                            Some(b',') => self.eat(b',')?,
                            Some(b']') => {
                                self.eat(b']')?;
                                return Ok(Value::Arr(items));
                            }
                            _ => return Err("malformed array".into()),
                        }
                    }
                }
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') if self.s[self.pos..].starts_with(b"true") => {
                    self.pos += 4;
                    Ok(Value::Bool(true))
                }
                Some(b'f') if self.s[self.pos..].starts_with(b"false") => {
                    self.pos += 5;
                    Ok(Value::Bool(false))
                }
                Some(d) if d.is_ascii_digit() => {
                    let start = self.pos;
                    while matches!(self.s.get(self.pos), Some(c) if c.is_ascii_digit()) {
                        self.pos += 1;
                    }
                    std::str::from_utf8(&self.s[start..self.pos])
                        .ok()
                        .and_then(|t| t.parse().ok())
                        .map(Value::Num)
                        .ok_or_else(|| format!("bad number at byte {start}"))
                }
                other => Err(format!("unexpected value start {other:?}")),
            }
        }
    }

    /// Parses one complete JSON document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut c = Cursor {
            s: text.as_bytes(),
            pos: 0,
        };
        let v = c.value()?;
        if c.peek().is_some() {
            return Err("trailing content after document".into());
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_aggregate_across_shards() {
        let t = Telemetry::new(4, 16);
        for shard in 0..4 {
            t.add(shard, Counter::Messages, shard as u64 + 1);
        }
        t.add(7, Counter::Messages, 10); // wraps modulo shard count
        assert_eq!(t.snapshot().get(Counter::Messages), 1 + 2 + 3 + 4 + 10);
        assert_eq!(t.snapshot().get(Counter::Retransmits), 0);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let t = Telemetry::new(1, 4);
        for v in [0u64, 1, 2, 3, 4, 1024] {
            t.record(0, HistogramId::InboxDepth, v);
        }
        let h = t.histogram(HistogramId::InboxDepth);
        assert_eq!(h[0], 1); // value 0
        assert_eq!(h[1], 1); // value 1
        assert_eq!(h[2], 2); // values 2, 3
        assert_eq!(h[3], 1); // value 4
        assert_eq!(h[11], 1); // value 1024
        assert_eq!(h.iter().sum::<u64>(), 6);
    }

    #[test]
    fn flight_recorder_keeps_last_k_rounds_with_deltas() {
        let t = Telemetry::new(1, 3);
        for round in 0..10u64 {
            t.add(0, Counter::Messages, round + 1);
            t.finish_round(round);
        }
        let rounds = t.recent_rounds();
        assert_eq!(rounds.len(), 3);
        assert_eq!(
            rounds.iter().map(|r| r.round).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
        // Deltas, not cumulative values.
        assert_eq!(
            rounds.iter().map(|r| r.messages).collect::<Vec<_>>(),
            vec![8, 9, 10]
        );
        assert_eq!(t.round(), 10);
    }

    #[test]
    fn straggler_flagged_on_load_spike() {
        let t = Telemetry::new(1, 64);
        for round in 0..20u64 {
            t.add(0, Counter::Messages, 10);
            t.finish_round(round);
        }
        assert_eq!(t.snapshot().get(Counter::StragglerRounds), 0);
        t.add(0, Counter::Messages, 1000);
        t.finish_round(20);
        assert_eq!(t.snapshot().get(Counter::StragglerRounds), 1);
        assert!(t.recent_rounds().last().unwrap().straggler);
        // A straggler round does not poison the next delta.
        t.add(0, Counter::Messages, 10);
        t.finish_round(21);
        assert_eq!(t.recent_rounds().last().unwrap().messages, 10);
    }

    #[test]
    fn postmortem_roundtrips_through_parse() {
        let t = Arc::new(Telemetry::new(2, 4));
        let mut h = TelemetryHandle::new(t.clone(), 0);
        let mut metrics = NetMetrics::default();
        for round in 0..9u64 {
            metrics.total_messages += 5 + round;
            metrics.total_bits += 160;
            h.on_round(&metrics, 4, 3, 2, 1);
            t.finish_round(round);
        }
        let text = t.postmortem_json("it broke: \"node 3\"\npanicked");
        let pm = Postmortem::parse(&text).expect("postmortem parses");
        assert_eq!(pm.schema_version, SCHEMA_VERSION as u64);
        assert_eq!(pm.reason, "it broke: \"node 3\"\npanicked");
        assert_eq!(pm.round, 9);
        assert_eq!(pm.recent_rounds.len(), 4);
        assert_eq!(
            pm.recent_rounds.iter().map(|r| r.round).collect::<Vec<_>>(),
            vec![5, 6, 7, 8]
        );
        assert_eq!(pm.recent_rounds, t.recent_rounds());
        let msgs = pm
            .counters
            .iter()
            .find(|(k, _)| k == "messages")
            .map(|(_, v)| *v);
        assert_eq!(msgs, Some(t.snapshot().get(Counter::Messages)));
    }

    #[test]
    fn postmortem_rejects_unknown_schema_version() {
        let t = Telemetry::new(1, 2);
        let text = t
            .postmortem_json("x")
            .replace("\"schema_version\":1", "\"schema_version\":999");
        let err = Postmortem::parse(&text).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn phase_labels_follow_published_schedule() {
        let t = Telemetry::new(1, 2);
        assert_eq!(t.phase_label(3), "-");
        t.set_schedule(5, 10, 15, 20);
        assert_eq!(t.phase_label(0), "A:tree");
        assert_eq!(t.phase_label(5), "B:counting");
        assert_eq!(t.phase_label(12), "C1:reduce");
        assert_eq!(t.phase_label(17), "C2:bcast");
        assert_eq!(t.phase_label(25), "D:aggregation");
    }
}
