//! Execution metrics: the quantities the paper's analysis talks about
//! (rounds, bits per message, messages per edge per round) measured rather
//! than asserted.

use bc_graph::NodeId;
use std::collections::HashSet;

/// A set of undirected edges across which bit flow is measured, stored
/// canonically as `(min, max)` pairs.
///
/// The lower-bound experiments (E8) declare the gadget's left/right cut
/// here and compare the measured flow to the `Ω(n log n)` communication
/// bound of Theorems 5–6.
#[derive(Debug, Clone, Default)]
pub struct EdgeCut {
    edges: HashSet<(NodeId, NodeId)>,
}

impl EdgeCut {
    /// Creates a cut from undirected edges (order of endpoints irrelevant).
    pub fn new<I: IntoIterator<Item = (NodeId, NodeId)>>(edges: I) -> Self {
        EdgeCut {
            edges: edges
                .into_iter()
                .map(|(u, v)| (u.min(v), u.max(v)))
                .collect(),
        }
    }

    /// Returns `true` if `{u, v}` belongs to the cut.
    pub fn contains(&self, u: NodeId, v: NodeId) -> bool {
        self.edges.contains(&(u.min(v), u.max(v)))
    }

    /// Number of edges in the cut.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the cut is empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Aggregate metrics for one simulated execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetMetrics {
    /// Rounds executed (the paper's time-complexity measure).
    pub rounds: u64,
    /// Total messages delivered.
    pub total_messages: u64,
    /// Total payload bits delivered.
    pub total_bits: u64,
    /// Largest single message, in bits.
    pub max_message_bits: usize,
    /// Maximum number of messages sent over one directed edge in one round
    /// (must be ≤ 1 in a CONGEST-compliant execution; Lemma 4).
    pub max_messages_per_edge_round: u32,
    /// Number of (directed edge, round) pairs that carried more than one
    /// message — `0` iff the schedule is collision-free.
    pub collisions: u64,
    /// Messages whose size exceeded the configured budget.
    pub oversized_messages: u64,
    /// Bits that crossed the declared [`EdgeCut`] (0 if none declared).
    pub cut_bits: u64,
    /// Messages that crossed the declared [`EdgeCut`].
    pub cut_messages: u64,
    /// Messages sent in each round — the traffic timeline that makes the
    /// protocol's phase structure visible (counting burst, control lull,
    /// aggregation burst).
    pub per_round_messages: Vec<u64>,
    /// Payload bits sent in each round (same timeline as
    /// `per_round_messages`, weighted by message size).
    pub per_round_bits: Vec<u64>,
    /// Largest single message per round, in bits.
    pub per_round_max_bits: Vec<u32>,
    /// Message-size histogram in log₂ buckets: `message_size_hist[i]`
    /// counts messages with `bits` in `[2^i, 2^(i+1))` (bucket 0 also
    /// holds empty messages). The CONGEST budget claim is visible here as
    /// an empty tail above `⌈log₂ budget⌉`.
    pub message_size_hist: Vec<u64>,
    /// Messages the fault plan silently dropped in flight.
    pub faults_dropped: u64,
    /// Messages the fault plan delivered twice.
    pub faults_duplicated: u64,
    /// Messages the fault plan bit-corrupted in flight.
    pub faults_corrupted: u64,
    /// Message copies the fault plan delayed past their normal round.
    pub faults_delayed: u64,
    /// Frames the reliable transport re-sent after an ack timeout
    /// (filled in by the transport-aware driver; the raw engine leaves
    /// it 0).
    pub messages_retransmitted: u64,
    /// Frames the reliable transport discarded as already-received
    /// duplicates (same provenance as `messages_retransmitted`).
    pub messages_deduped: u64,
}

impl NetMetrics {
    /// Folds another partial metrics record into this one (used by the
    /// parallel engine to merge per-worker tallies).
    ///
    /// Counters add; `rounds` takes the maximum, because partial records
    /// describe disjoint node sets stepping through the *same* rounds — a
    /// worker that saw 5 rounds and one that saw 5 rounds together still
    /// executed 5 rounds, not 10.
    pub fn merge(&mut self, other: &NetMetrics) {
        self.rounds = self.rounds.max(other.rounds);
        self.total_messages += other.total_messages;
        self.total_bits += other.total_bits;
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
        self.max_messages_per_edge_round = self
            .max_messages_per_edge_round
            .max(other.max_messages_per_edge_round);
        self.collisions += other.collisions;
        self.oversized_messages += other.oversized_messages;
        self.cut_bits += other.cut_bits;
        self.cut_messages += other.cut_messages;
        if self.per_round_messages.len() < other.per_round_messages.len() {
            self.per_round_messages
                .resize(other.per_round_messages.len(), 0);
        }
        for (a, b) in self
            .per_round_messages
            .iter_mut()
            .zip(&other.per_round_messages)
        {
            *a += b;
        }
        if self.per_round_bits.len() < other.per_round_bits.len() {
            self.per_round_bits.resize(other.per_round_bits.len(), 0);
        }
        for (a, b) in self.per_round_bits.iter_mut().zip(&other.per_round_bits) {
            *a += b;
        }
        if self.per_round_max_bits.len() < other.per_round_max_bits.len() {
            self.per_round_max_bits
                .resize(other.per_round_max_bits.len(), 0);
        }
        for (a, b) in self
            .per_round_max_bits
            .iter_mut()
            .zip(&other.per_round_max_bits)
        {
            *a = (*a).max(*b);
        }
        if self.message_size_hist.len() < other.message_size_hist.len() {
            self.message_size_hist
                .resize(other.message_size_hist.len(), 0);
        }
        for (a, b) in self
            .message_size_hist
            .iter_mut()
            .zip(&other.message_size_hist)
        {
            *a += b;
        }
        self.faults_dropped += other.faults_dropped;
        self.faults_duplicated += other.faults_duplicated;
        self.faults_corrupted += other.faults_corrupted;
        self.faults_delayed += other.faults_delayed;
        self.messages_retransmitted += other.messages_retransmitted;
        self.messages_deduped += other.messages_deduped;
    }

    /// Extends the per-round timelines to cover `round`, so silent rounds
    /// appear as explicit zeros rather than missing entries.
    pub(crate) fn begin_round(&mut self, round: u64) {
        let len = round as usize + 1;
        if self.per_round_messages.len() < len {
            self.per_round_messages.resize(len, 0);
        }
        if self.per_round_bits.len() < len {
            self.per_round_bits.resize(len, 0);
        }
        if self.per_round_max_bits.len() < len {
            self.per_round_max_bits.resize(len, 0);
        }
    }

    /// Records one message of `bits` payload bits sent in `round` into the
    /// per-round timelines and the size histogram.
    pub(crate) fn record_message(&mut self, round: u64, bits: usize) {
        let r = round as usize;
        if self.per_round_messages.len() <= r {
            self.per_round_messages.resize(r + 1, 0);
        }
        if self.per_round_bits.len() <= r {
            self.per_round_bits.resize(r + 1, 0);
        }
        if self.per_round_max_bits.len() <= r {
            self.per_round_max_bits.resize(r + 1, 0);
        }
        self.per_round_messages[r] += 1;
        self.per_round_bits[r] += bits as u64;
        self.per_round_max_bits[r] = self.per_round_max_bits[r].max(bits as u32);
        let bucket = Self::size_bucket(bits);
        if self.message_size_hist.len() <= bucket {
            self.message_size_hist.resize(bucket + 1, 0);
        }
        self.message_size_hist[bucket] += 1;
    }

    /// The log₂ histogram bucket for a message of `bits` bits.
    pub fn size_bucket(bits: usize) -> usize {
        (usize::BITS - 1 - bits.max(1).leading_zeros()) as usize
    }

    /// Returns `true` if the execution satisfied the CONGEST constraints:
    /// no collisions and no oversized messages.
    pub fn congest_compliant(&self) -> bool {
        self.collisions == 0 && self.oversized_messages == 0
    }

    /// Summarizes the round window `[start, end)` from the per-round
    /// timelines — the per-phase breakdown a driver produces by slicing at
    /// its phase boundaries. Rounds beyond the recorded timeline count as
    /// silent (zero traffic).
    pub fn phase_window(&self, name: impl Into<String>, start: u64, end: u64) -> PhaseStat {
        let (start, end) = (start.min(end), end);
        let clip = |v: u64| (v as usize).min(self.per_round_messages.len());
        let (lo, hi) = (clip(start), clip(end));
        let bits_hi = (end as usize).min(self.per_round_bits.len());
        let bits_lo = (start as usize).min(bits_hi);
        let max_hi = (end as usize).min(self.per_round_max_bits.len());
        let max_lo = (start as usize).min(max_hi);
        PhaseStat {
            name: name.into(),
            start,
            end,
            rounds: end - start,
            messages: self.per_round_messages[lo..hi].iter().sum(),
            bits: self.per_round_bits[bits_lo..bits_hi].iter().sum(),
            max_message_bits: self.per_round_max_bits[max_lo..max_hi]
                .iter()
                .copied()
                .max()
                .unwrap_or(0) as usize,
        }
    }
}

/// Traffic summary of one protocol phase (a contiguous round window),
/// produced by [`NetMetrics::phase_window`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase label (`"A:tree"` etc. — chosen by the driver).
    pub name: String,
    /// First round of the window (inclusive).
    pub start: u64,
    /// One past the last round of the window.
    pub end: u64,
    /// Window length in rounds.
    pub rounds: u64,
    /// Messages sent within the window.
    pub messages: u64,
    /// Payload bits sent within the window.
    pub bits: u64,
    /// Largest single message within the window.
    pub max_message_bits: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_canonicalizes() {
        let cut = EdgeCut::new([(3, 1), (1, 3), (2, 5)]);
        assert_eq!(cut.len(), 2);
        assert!(cut.contains(1, 3));
        assert!(cut.contains(3, 1));
        assert!(!cut.contains(1, 2));
        assert!(!cut.is_empty());
        assert!(EdgeCut::default().is_empty());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = NetMetrics {
            rounds: 5,
            total_messages: 10,
            total_bits: 100,
            max_message_bits: 8,
            max_messages_per_edge_round: 1,
            collisions: 0,
            oversized_messages: 0,
            cut_bits: 40,
            cut_messages: 4,
            per_round_messages: vec![4, 6],
            per_round_bits: vec![40, 60],
            per_round_max_bits: vec![8, 8],
            message_size_hist: vec![0, 0, 0, 10],
            ..NetMetrics::default()
        };
        let b = NetMetrics {
            rounds: 3,
            total_messages: 3,
            total_bits: 60,
            max_message_bits: 16,
            max_messages_per_edge_round: 2,
            collisions: 1,
            oversized_messages: 1,
            cut_bits: 20,
            cut_messages: 2,
            per_round_messages: vec![1, 1, 1],
            per_round_bits: vec![20, 20, 20],
            per_round_max_bits: vec![16, 4, 16],
            message_size_hist: vec![0, 0, 0, 0, 3],
            faults_dropped: 2,
            messages_retransmitted: 3,
            messages_deduped: 1,
            ..NetMetrics::default()
        };
        a.merge(&b);
        // Workers share rounds: max, never a sum (5+3=8 would be wrong).
        assert_eq!(a.rounds, 5);
        assert_eq!(a.total_messages, 13);
        assert_eq!(a.total_bits, 160);
        assert_eq!(a.max_message_bits, 16);
        assert_eq!(a.max_messages_per_edge_round, 2);
        assert_eq!(a.cut_bits, 60);
        assert_eq!(a.per_round_messages, vec![5, 7, 1]);
        assert_eq!(a.per_round_bits, vec![60, 80, 20]);
        assert_eq!(a.per_round_max_bits, vec![16, 8, 16]);
        assert_eq!(a.message_size_hist, vec![0, 0, 0, 10, 3]);
        assert_eq!(a.faults_dropped, 2);
        assert_eq!(a.messages_retransmitted, 3);
        assert_eq!(a.messages_deduped, 1);
        assert!(!a.congest_compliant());

        // A merge into a fresh record preserves the partial's rounds.
        let mut fresh = NetMetrics::default();
        fresh.merge(&b);
        assert_eq!(fresh.rounds, 3);
    }

    #[test]
    fn record_message_builds_timelines() {
        let mut m = NetMetrics::default();
        m.record_message(0, 8);
        m.record_message(2, 32);
        m.record_message(2, 5);
        assert_eq!(m.per_round_messages, vec![1, 0, 2]);
        assert_eq!(m.per_round_bits, vec![8, 0, 37]);
        assert_eq!(m.per_round_max_bits, vec![8, 0, 32]);
        // Buckets: 8 → 3, 32 → 5, 5 → 2.
        assert_eq!(m.message_size_hist, vec![0, 0, 1, 1, 0, 1]);
    }

    #[test]
    fn size_buckets() {
        assert_eq!(NetMetrics::size_bucket(0), 0);
        assert_eq!(NetMetrics::size_bucket(1), 0);
        assert_eq!(NetMetrics::size_bucket(2), 1);
        assert_eq!(NetMetrics::size_bucket(3), 1);
        assert_eq!(NetMetrics::size_bucket(4), 2);
        assert_eq!(NetMetrics::size_bucket(64), 6);
        assert_eq!(NetMetrics::size_bucket(65), 6);
        assert_eq!(NetMetrics::size_bucket(128), 7);
    }

    #[test]
    fn phase_window_slices_timelines() {
        let m = NetMetrics {
            per_round_messages: vec![2, 3, 5, 7, 11],
            per_round_bits: vec![20, 30, 50, 70, 110],
            per_round_max_bits: vec![10, 10, 25, 10, 40],
            ..NetMetrics::default()
        };
        let p = m.phase_window("B:counting", 1, 4);
        assert_eq!(p.rounds, 3);
        assert_eq!(p.messages, 15);
        assert_eq!(p.bits, 150);
        assert_eq!(p.max_message_bits, 25);
        // Windows reaching past the recorded timeline are silent, not a panic.
        let tail = m.phase_window("D:agg", 4, 9);
        assert_eq!(tail.rounds, 5);
        assert_eq!(tail.messages, 11);
        assert_eq!(tail.max_message_bits, 40);
        let empty = m.phase_window("empty", 7, 7);
        assert_eq!(empty.messages, 0);
    }

    #[test]
    fn compliance() {
        assert!(NetMetrics::default().congest_compliant());
    }
}
