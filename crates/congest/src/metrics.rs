//! Execution metrics: the quantities the paper's analysis talks about
//! (rounds, bits per message, messages per edge per round) measured rather
//! than asserted.

use bc_graph::NodeId;
use std::collections::HashSet;

/// A set of undirected edges across which bit flow is measured, stored
/// canonically as `(min, max)` pairs.
///
/// The lower-bound experiments (E8) declare the gadget's left/right cut
/// here and compare the measured flow to the `Ω(n log n)` communication
/// bound of Theorems 5–6.
#[derive(Debug, Clone, Default)]
pub struct EdgeCut {
    edges: HashSet<(NodeId, NodeId)>,
}

impl EdgeCut {
    /// Creates a cut from undirected edges (order of endpoints irrelevant).
    pub fn new<I: IntoIterator<Item = (NodeId, NodeId)>>(edges: I) -> Self {
        EdgeCut {
            edges: edges
                .into_iter()
                .map(|(u, v)| (u.min(v), u.max(v)))
                .collect(),
        }
    }

    /// Returns `true` if `{u, v}` belongs to the cut.
    pub fn contains(&self, u: NodeId, v: NodeId) -> bool {
        self.edges.contains(&(u.min(v), u.max(v)))
    }

    /// Number of edges in the cut.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the cut is empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Aggregate metrics for one simulated execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetMetrics {
    /// Rounds executed (the paper's time-complexity measure).
    pub rounds: u64,
    /// Total messages delivered.
    pub total_messages: u64,
    /// Total payload bits delivered.
    pub total_bits: u64,
    /// Largest single message, in bits.
    pub max_message_bits: usize,
    /// Maximum number of messages sent over one directed edge in one round
    /// (must be ≤ 1 in a CONGEST-compliant execution; Lemma 4).
    pub max_messages_per_edge_round: u32,
    /// Number of (directed edge, round) pairs that carried more than one
    /// message — `0` iff the schedule is collision-free.
    pub collisions: u64,
    /// Messages whose size exceeded the configured budget.
    pub oversized_messages: u64,
    /// Bits that crossed the declared [`EdgeCut`] (0 if none declared).
    pub cut_bits: u64,
    /// Messages that crossed the declared [`EdgeCut`].
    pub cut_messages: u64,
    /// Messages sent in each round — the traffic timeline that makes the
    /// protocol's phase structure visible (counting burst, control lull,
    /// aggregation burst).
    pub per_round_messages: Vec<u64>,
}

impl NetMetrics {
    /// Folds another partial metrics record into this one (used by the
    /// parallel engine to merge per-worker tallies).
    pub fn merge(&mut self, other: &NetMetrics) {
        self.total_messages += other.total_messages;
        self.total_bits += other.total_bits;
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
        self.max_messages_per_edge_round = self
            .max_messages_per_edge_round
            .max(other.max_messages_per_edge_round);
        self.collisions += other.collisions;
        self.oversized_messages += other.oversized_messages;
        self.cut_bits += other.cut_bits;
        self.cut_messages += other.cut_messages;
        if self.per_round_messages.len() < other.per_round_messages.len() {
            self.per_round_messages
                .resize(other.per_round_messages.len(), 0);
        }
        for (a, b) in self
            .per_round_messages
            .iter_mut()
            .zip(&other.per_round_messages)
        {
            *a += b;
        }
    }

    /// Returns `true` if the execution satisfied the CONGEST constraints:
    /// no collisions and no oversized messages.
    pub fn congest_compliant(&self) -> bool {
        self.collisions == 0 && self.oversized_messages == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_canonicalizes() {
        let cut = EdgeCut::new([(3, 1), (1, 3), (2, 5)]);
        assert_eq!(cut.len(), 2);
        assert!(cut.contains(1, 3));
        assert!(cut.contains(3, 1));
        assert!(!cut.contains(1, 2));
        assert!(!cut.is_empty());
        assert!(EdgeCut::default().is_empty());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = NetMetrics {
            rounds: 5,
            total_messages: 10,
            total_bits: 100,
            max_message_bits: 8,
            max_messages_per_edge_round: 1,
            collisions: 0,
            oversized_messages: 0,
            cut_bits: 40,
            cut_messages: 4,
            per_round_messages: vec![4, 6],
        };
        let b = NetMetrics {
            rounds: 0,
            total_messages: 3,
            total_bits: 60,
            max_message_bits: 16,
            max_messages_per_edge_round: 2,
            collisions: 1,
            oversized_messages: 1,
            cut_bits: 20,
            cut_messages: 2,
            per_round_messages: vec![1, 1, 1],
        };
        a.merge(&b);
        assert_eq!(a.total_messages, 13);
        assert_eq!(a.total_bits, 160);
        assert_eq!(a.max_message_bits, 16);
        assert_eq!(a.max_messages_per_edge_round, 2);
        assert_eq!(a.cut_bits, 60);
        assert_eq!(a.per_round_messages, vec![5, 7, 1]);
        assert!(!a.congest_compliant());
    }

    #[test]
    fn compliance() {
        assert!(NetMetrics::default().congest_compliant());
    }
}
