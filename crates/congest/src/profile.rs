//! Wall-clock profiling of CONGEST executions.
//!
//! The simulator's *logical* cost model (rounds, messages, bits) is
//! covered by [`crate::NetMetrics`]; this module measures the *physical*
//! cost of simulating it — where the host's wall-clock time goes. Every
//! engine in this crate (serial, parallel, α-synchronizer) accepts an
//! optional [`Profiler`] and, when one is installed, records per-round
//! spans split into
//!
//! * **node compute** — time spent inside the protocol state machines'
//!   `round()` calls (the part a real deployment would parallelize across
//!   machines), and
//! * **engine overhead** — everything else in the round: message routing,
//!   collision accounting, inbox management, worker scheduling.
//!
//! The parallel engine additionally records per-worker busy times, from
//! which [`WorkerStats`] derives utilization and imbalance; the
//! α-synchronizer records pulse-skew and event-queue-depth counters
//! ([`SyncStats`]).
//!
//! Profiling is strictly opt-in, exactly like tracing: without a profiler
//! the engines pay one branch per round and allocate nothing, and a
//! profiled run produces bit-identical results to an unprofiled one
//! (asserted by the integration tests for all three engines). Wall-clock
//! numbers themselves are of course not deterministic — they describe the
//! host, not the algorithm — which is why they live here and never in
//! [`crate::NetMetrics`].

use crate::telemetry::{SCHEMA_VERSION, STRAGGLER_FACTOR};
use std::fmt;
use std::time::Instant;

/// Per-round span recorded by an engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundSpan {
    /// Round (or synchronizer pulse) number.
    pub round: u64,
    /// Wall-clock nanoseconds for the whole round step. For the
    /// α-synchronizer, whose pulses interleave, this equals `compute_ns`
    /// (the per-pulse overhead is only meaningful run-wide).
    pub total_ns: u64,
    /// Nanoseconds inside protocol `round()` calls.
    pub compute_ns: u64,
    /// Messages delivered into this round's inboxes (queue depth at the
    /// round boundary).
    pub inbox_messages: u64,
    /// Nodes actually stepped this round (idle-node skipping removes the
    /// rest; 0 for α-synchronizer pulses, which track deliveries instead).
    pub nodes_stepped: u64,
    /// Per-worker busy nanoseconds (parallel engine only; empty
    /// otherwise). Worker `i` owns the same node shard for the whole run,
    /// so the vector is comparable across rounds.
    pub worker_busy_ns: Vec<u64>,
    /// Per-worker nanoseconds spent in the message data plane — draining
    /// peer lane batches and validating/routing staged sends (parallel
    /// engine only; empty otherwise). A subset of the worker's busy time.
    pub worker_route_ns: Vec<u64>,
    /// Messages routed to a node owned by a *different* worker (parallel
    /// engine only). Cross-shard traffic is what the partition strategy
    /// tries to keep cheap relative to `intra_shard_messages`.
    pub cross_shard_messages: u64,
    /// Messages routed within the sending worker's own shard (parallel
    /// engine only).
    pub intra_shard_messages: u64,
}

/// Pulse-skew and queue counters specific to the α-synchronizer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncCounters {
    /// Payload deliveries observed.
    pub deliveries: u64,
    /// Payload deliveries whose sender pulse differed from the receiver's
    /// current pulse (the synchronizer permits a skew of exactly one).
    pub skewed_deliveries: u64,
    /// Largest |sender pulse − receiver pulse| observed on a payload
    /// delivery (> 1 would be a synchronizer bug).
    pub max_pulse_skew: u64,
    /// High-water mark of the global event queue.
    pub max_queue_depth: usize,
}

/// A wall-clock profiler one engine run writes into.
///
/// Install with `Network::set_profiler` (round engines) or
/// `asynchronous::run_synchronized_profiled`, then turn the recording into
/// a [`ProfileReport`] with [`Profiler::report`].
#[derive(Debug, Default)]
pub struct Profiler {
    spans: Vec<RoundSpan>,
    /// Wall-clock of the whole engine run (α-synchronizer: measured around
    /// the event loop; round engines: the sum of round spans is used when
    /// this is 0).
    run_wall_ns: u64,
    sync: SyncCounters,
    run_start: Option<Instant>,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// The recorded per-round spans, in round order.
    pub fn spans(&self) -> &[RoundSpan] {
        &self.spans
    }

    /// Engine-side: records one completed round. Public so out-of-crate
    /// orchestrators (the socket leader) can fold per-shard round rows
    /// into the same report shape the in-process engines produce.
    pub fn record_round(&mut self, span: RoundSpan) {
        self.spans.push(span);
    }

    /// Engine-side: accumulates compute time into the span for `round`,
    /// creating intermediate spans as needed (the α-synchronizer visits
    /// pulses out of order and one pulse at a time per node).
    pub(crate) fn add_pulse_compute(&mut self, pulse: u64, ns: u64) {
        let idx = pulse as usize;
        if self.spans.len() <= idx {
            let from = self.spans.len() as u64;
            self.spans.extend((from..=pulse).map(|round| RoundSpan {
                round,
                ..RoundSpan::default()
            }));
        }
        self.spans[idx].compute_ns += ns;
        self.spans[idx].total_ns += ns;
    }

    /// Engine-side: marks the start of the whole run (α-synchronizer).
    pub(crate) fn start_run(&mut self) {
        self.run_start = Some(Instant::now());
    }

    /// Engine-side: closes the run wall-clock opened by `start_run`.
    pub(crate) fn finish_run(&mut self) {
        if let Some(t0) = self.run_start.take() {
            self.run_wall_ns += t0.elapsed().as_nanos() as u64;
        }
    }

    /// Engine-side: mutable access to the synchronizer counters.
    pub(crate) fn sync_counters(&mut self) -> &mut SyncCounters {
        &mut self.sync
    }

    /// Total wall-clock nanoseconds of the run.
    pub fn wall_ns(&self) -> u64 {
        if self.run_wall_ns > 0 {
            self.run_wall_ns
        } else {
            self.spans.iter().map(|s| s.total_ns).sum()
        }
    }

    /// Total nanoseconds inside protocol `round()` calls.
    pub fn compute_ns(&self) -> u64 {
        self.spans.iter().map(|s| s.compute_ns).sum()
    }

    /// Summarizes the round window `[start, end)` (the driver slices at
    /// its phase boundaries, mirroring `NetMetrics::phase_window`).
    pub fn phase_span(&self, name: impl Into<String>, start: u64, end: u64) -> PhaseSpan {
        let (start, end) = (start.min(end), end);
        let clip = |v: u64| (v as usize).min(self.spans.len());
        let (lo, hi) = (clip(start), clip(end));
        let window = &self.spans[lo..hi];
        let total: u64 = window.iter().map(|s| s.total_ns).sum();
        let compute: u64 = window.iter().map(|s| s.compute_ns).sum();
        PhaseSpan {
            name: name.into(),
            start,
            end,
            rounds: end - start,
            wall_ns: total,
            compute_ns: compute,
            overhead_ns: total.saturating_sub(compute),
            inbox_messages: window.iter().map(|s| s.inbox_messages).sum(),
        }
    }

    /// Utilization/imbalance of the parallel engine's workers, or `None`
    /// for single-threaded recordings.
    pub fn worker_stats(&self) -> Option<WorkerStats> {
        let workers = self
            .spans
            .iter()
            .map(|s| s.worker_busy_ns.len())
            .max()
            .filter(|&w| w > 1)?;
        let mut busy_total = 0u64;
        let mut critical_total = 0u64;
        let mut route_total = 0u64;
        for span in &self.spans {
            if span.worker_busy_ns.is_empty() {
                continue;
            }
            busy_total += span.worker_busy_ns.iter().sum::<u64>();
            critical_total += span.worker_busy_ns.iter().copied().max().unwrap_or(0);
            route_total += span.worker_route_ns.iter().sum::<u64>();
        }
        let ideal = critical_total.saturating_mul(workers as u64);
        let utilization = if ideal == 0 {
            1.0
        } else {
            busy_total as f64 / ideal as f64
        };
        let mean_total = busy_total as f64 / workers as f64;
        let imbalance = if mean_total == 0.0 {
            1.0
        } else {
            critical_total as f64 / mean_total
        };
        Some(WorkerStats {
            workers,
            busy_ns: busy_total,
            critical_path_ns: critical_total,
            route_ns: route_total,
            utilization,
            imbalance,
        })
    }

    /// Builds the final report. `engine` labels the run (`"serial"`,
    /// `"parallel(4)"`, `"alpha-sync"`); `phases` are the driver's
    /// `(name, start, end)` round windows (empty when boundaries are
    /// unknown, e.g. adaptive scheduling).
    pub fn report(
        &self,
        engine: impl Into<String>,
        phases: &[(String, u64, u64)],
    ) -> ProfileReport {
        let wall = self.wall_ns();
        let compute = self.compute_ns();
        ProfileReport {
            engine: engine.into(),
            rounds: self.spans.len() as u64,
            wall_ns: wall,
            compute_ns: compute,
            overhead_ns: wall.saturating_sub(compute),
            max_inbox_depth: self
                .spans
                .iter()
                .map(|s| s.inbox_messages)
                .max()
                .unwrap_or(0),
            nodes_stepped: self.spans.iter().map(|s| s.nodes_stepped).sum(),
            cross_shard_messages: self.spans.iter().map(|s| s.cross_shard_messages).sum(),
            intra_shard_messages: self.spans.iter().map(|s| s.intra_shard_messages).sum(),
            phases: phases
                .iter()
                .map(|(name, start, end)| self.phase_span(name.clone(), *start, *end))
                .collect(),
            workers: self.worker_stats(),
            sync: (self.sync.deliveries > 0).then_some(self.sync),
            messages_retransmitted: 0,
            messages_deduped: 0,
            faults_injected: 0,
            state_bytes_total: 0,
            state_bytes_peak: 0,
            stragglers: detect_stragglers(&self.spans),
            round_spans: self.spans.clone(),
        }
    }
}

/// Flags rounds whose worker busy time or inbox depth exceeds a robust
/// baseline (median × [`STRAGGLER_FACTOR`]), worst offenders first.
///
/// Two baselines are used: within each round, a worker is a straggler
/// when its busy time exceeds the round's median worker busy time × k
/// (load imbalance); across rounds, a round is an inbox-depth anomaly
/// when its delivered-message count exceeds the run's median × k.
/// Absolute floors (200 µs busy, 32 messages) keep noise on tiny rounds
/// from being flagged.
fn detect_stragglers(spans: &[RoundSpan]) -> Vec<Straggler> {
    const BUSY_FLOOR_NS: u64 = 200_000;
    const INBOX_FLOOR: u64 = 32;
    let mut out = Vec::new();
    for span in spans {
        if span.worker_busy_ns.len() > 1 {
            let mut sorted = span.worker_busy_ns.clone();
            sorted.sort_unstable();
            let median = sorted[sorted.len() / 2];
            for (w, &busy) in span.worker_busy_ns.iter().enumerate() {
                if median > 0
                    && busy > BUSY_FLOOR_NS
                    && busy > median.saturating_mul(STRAGGLER_FACTOR)
                {
                    out.push(Straggler {
                        kind: "worker_busy",
                        round: span.round,
                        worker: Some(w),
                        value: busy,
                        baseline: median,
                    });
                }
            }
        }
    }
    let mut inboxes: Vec<u64> = spans.iter().map(|s| s.inbox_messages).collect();
    inboxes.sort_unstable();
    let median = inboxes.get(inboxes.len() / 2).copied().unwrap_or(0);
    if median > 0 && spans.len() >= 8 {
        for span in spans {
            if span.inbox_messages >= INBOX_FLOOR
                && span.inbox_messages > median.saturating_mul(STRAGGLER_FACTOR)
            {
                out.push(Straggler {
                    kind: "inbox_depth",
                    round: span.round,
                    worker: None,
                    value: span.inbox_messages,
                    baseline: median,
                });
            }
        }
    }
    // Worst offenders first, bounded so a pathological run cannot bloat
    // the report.
    out.sort_by(|a, b| {
        let ra = a.value as u128 * b.baseline.max(1) as u128;
        let rb = b.value as u128 * a.baseline.max(1) as u128;
        rb.cmp(&ra)
    });
    out.truncate(16);
    out
}

/// One straggler/anomaly flagged by the robust-baseline detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Straggler {
    /// What exceeded its baseline: `"worker_busy"` (one worker's busy
    /// time vs the round's median worker), `"inbox_depth"` (a round's
    /// delivered messages vs the run's median round), or
    /// `"retransmit_rate"` (flagged live by the telemetry flight
    /// recorder).
    pub kind: &'static str,
    /// Round the anomaly occurred in.
    pub round: u64,
    /// Offending worker for `worker_busy`; `None` otherwise.
    pub worker: Option<usize>,
    /// The observed value (nanoseconds or messages).
    pub value: u64,
    /// The robust baseline (median) it was compared against.
    pub baseline: u64,
}

/// Wall-clock summary of one phase window, produced by
/// [`Profiler::phase_span`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseSpan {
    /// Phase label (`"B:counting"` etc.).
    pub name: String,
    /// First round of the window (inclusive).
    pub start: u64,
    /// One past the last round of the window.
    pub end: u64,
    /// Window length in rounds.
    pub rounds: u64,
    /// Wall-clock nanoseconds spent in the window.
    pub wall_ns: u64,
    /// Nanoseconds inside protocol `round()` calls.
    pub compute_ns: u64,
    /// `wall_ns − compute_ns`: engine bookkeeping.
    pub overhead_ns: u64,
    /// Messages delivered into inboxes within the window.
    pub inbox_messages: u64,
}

/// Parallel-worker summary derived from per-round busy times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerStats {
    /// Worker threads used.
    pub workers: usize,
    /// Total busy nanoseconds across all workers and rounds.
    pub busy_ns: u64,
    /// Sum over rounds of the slowest worker's busy time — the parallel
    /// section's critical path.
    pub critical_path_ns: u64,
    /// Total nanoseconds all workers spent in the message data plane
    /// (lane draining plus send validation/routing) — the engine-overhead
    /// share of `busy_ns` that scales with traffic, not node compute.
    pub route_ns: u64,
    /// `busy / (workers · critical path)` ∈ (0, 1]: how evenly the
    /// per-round node work fills the worker pool.
    pub utilization: f64,
    /// `critical path / mean busy` ≥ 1: how much the slowest worker
    /// stretches each round.
    pub imbalance: f64,
}

/// α-synchronizer counters surfaced in the report.
pub type SyncStats = SyncCounters;

/// The profiler's final output: run totals, per-phase spans, and
/// engine-specific statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileReport {
    /// Engine label (`"serial"`, `"parallel(4)"`, `"alpha-sync"`).
    pub engine: String,
    /// Rounds (or pulses) recorded.
    pub rounds: u64,
    /// Total wall-clock nanoseconds.
    pub wall_ns: u64,
    /// Nanoseconds inside protocol `round()` calls.
    pub compute_ns: u64,
    /// `wall − compute`: simulator bookkeeping.
    pub overhead_ns: u64,
    /// Largest number of messages delivered into one round.
    pub max_inbox_depth: u64,
    /// Sum over rounds of nodes actually stepped (the round engines skip
    /// idle nodes; `rounds · n` minus this is work the engine avoided).
    pub nodes_stepped: u64,
    /// Messages the parallel engine routed across worker shards (0 for
    /// serial / α-sync runs).
    pub cross_shard_messages: u64,
    /// Messages the parallel engine routed within the sending worker's
    /// own shard (0 for serial / α-sync runs).
    pub intra_shard_messages: u64,
    /// Per-phase spans (empty when phase boundaries are unknown).
    pub phases: Vec<PhaseSpan>,
    /// Parallel-worker statistics (parallel engine only).
    pub workers: Option<WorkerStats>,
    /// Synchronizer counters (α-synchronizer only).
    pub sync: Option<SyncStats>,
    /// Frames resent by the reliable transport (0 for raw runs).
    pub messages_retransmitted: u64,
    /// Duplicate frames discarded by the reliable transport's dedup window
    /// (0 for raw runs).
    pub messages_deduped: u64,
    /// Fault events injected by the network layer (drops + duplicates +
    /// corruptions + delays; 0 for lossless runs).
    pub faults_injected: u64,
    /// Total protocol-state bytes across all nodes at the end of the run
    /// (0 when the protocol does not report state; filled by the driver).
    pub state_bytes_total: u64,
    /// Largest single-node protocol-state footprint in bytes.
    pub state_bytes_peak: u64,
    /// Rounds/workers whose busy time or inbox depth exceeded the robust
    /// baseline (median × k), worst first, capped at 16.
    pub stragglers: Vec<Straggler>,
    /// The raw per-round spans the report was built from; feeds the
    /// Perfetto exporter and is *not* serialized by [`to_json`].
    ///
    /// [`to_json`]: ProfileReport::to_json
    pub round_spans: Vec<RoundSpan>,
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

impl ProfileReport {
    /// Fraction of the wall-clock spent in node compute.
    pub fn compute_fraction(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.compute_ns as f64 / self.wall_ns as f64
        }
    }

    /// Renders the report as a single JSON object (the `--profile --json`
    /// payload and the `BENCH_profile.json` building block).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"schema_version\":{SCHEMA_VERSION},\
             \"engine\":\"{}\",\"rounds\":{},\"wall_ns\":{},\"compute_ns\":{},\
             \"overhead_ns\":{},\"max_inbox_depth\":{},\"nodes_stepped\":{}",
            self.engine,
            self.rounds,
            self.wall_ns,
            self.compute_ns,
            self.overhead_ns,
            self.max_inbox_depth,
            self.nodes_stepped
        );
        let _ = write!(
            out,
            ",\"cross_shard_messages\":{},\"intra_shard_messages\":{}",
            self.cross_shard_messages, self.intra_shard_messages
        );
        out.push_str(",\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"start\":{},\"end\":{},\"rounds\":{},\"wall_ns\":{},\
                 \"compute_ns\":{},\"overhead_ns\":{},\"inbox_messages\":{}}}",
                p.name,
                p.start,
                p.end,
                p.rounds,
                p.wall_ns,
                p.compute_ns,
                p.overhead_ns,
                p.inbox_messages
            );
        }
        out.push(']');
        if let Some(w) = &self.workers {
            let _ = write!(
                out,
                ",\"workers\":{{\"workers\":{},\"busy_ns\":{},\"critical_path_ns\":{},\
                 \"route_ns\":{},\"utilization\":{:.4},\"imbalance\":{:.4}}}",
                w.workers, w.busy_ns, w.critical_path_ns, w.route_ns, w.utilization, w.imbalance
            );
        }
        if let Some(s) = &self.sync {
            let _ = write!(
                out,
                ",\"sync\":{{\"deliveries\":{},\"skewed_deliveries\":{},\"max_pulse_skew\":{},\
                 \"max_queue_depth\":{}}}",
                s.deliveries, s.skewed_deliveries, s.max_pulse_skew, s.max_queue_depth
            );
        }
        let _ = write!(
            out,
            ",\"messages_retransmitted\":{},\"messages_deduped\":{},\"faults_injected\":{}",
            self.messages_retransmitted, self.messages_deduped, self.faults_injected
        );
        let _ = write!(
            out,
            ",\"state_bytes_total\":{},\"state_bytes_peak\":{}",
            self.state_bytes_total, self.state_bytes_peak
        );
        out.push_str(",\"stragglers\":[");
        for (i, s) in self.stragglers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"kind\":\"{}\",\"round\":{},\"worker\":{},\"value\":{},\"baseline\":{}}}",
                s.kind,
                s.round,
                s.worker.map_or(-1, |w| w as i64),
                s.value,
                s.baseline
            );
        }
        out.push_str("]}");
        out
    }

    /// Renders the run as Chrome/Perfetto Trace Event JSON (the
    /// `--perfetto FILE` payload; open at <https://ui.perfetto.dev>).
    ///
    /// Layout: tid 0 carries the phase spans with the round spans nested
    /// inside them (exact cumulative timestamps, so containment — and
    /// therefore Perfetto's nesting — is structural, not approximate);
    /// tid `10 + w` carries worker `w`'s busy span per round with its
    /// lane-routing slice nested inside; a counter track plots per-round
    /// inbox messages.
    pub fn to_perfetto_json(&self) -> String {
        use std::fmt::Write as _;
        // ns → µs with sub-µs precision preserved; the Trace Event
        // format's `ts`/`dur` unit is microseconds.
        fn us(ns: u64) -> f64 {
            ns as f64 / 1e3
        }
        let mut out = String::with_capacity(4096);
        let _ = write!(
            out,
            "{{\"schema_version\":{SCHEMA_VERSION},\"displayTimeUnit\":\"ms\",\"traceEvents\":["
        );
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"distbc [{}]\"}}}}",
            self.engine
        );
        let _ = write!(
            out,
            ",{{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"rounds\"}}}}"
        );
        let n_workers = self
            .round_spans
            .iter()
            .map(|s| s.worker_busy_ns.len())
            .max()
            .unwrap_or(0);
        for w in 0..n_workers {
            let _ = write!(
                out,
                ",{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"worker {w}\"}}}}",
                10 + w
            );
        }
        // Phase spans sit on the same virtual timeline as the rounds:
        // a phase [start, end) begins at the cumulative duration of all
        // rounds before `start`, so every round event is strictly
        // contained in its phase event.
        let starts: Vec<u64> = {
            let mut acc = 0u64;
            self.round_spans
                .iter()
                .map(|s| {
                    let t = acc;
                    acc += s.total_ns;
                    t
                })
                .collect()
        };
        let total_ns: u64 = self.round_spans.iter().map(|s| s.total_ns).sum();
        for p in &self.phases {
            let lo = starts.get(p.start as usize).copied().unwrap_or(total_ns);
            let hi = starts.get(p.end as usize).copied().unwrap_or(total_ns);
            let _ = write!(
                out,
                ",{{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"cat\":\"phase\",\"name\":\"{}\",\
                 \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"rounds\":{}}}}}",
                p.name,
                us(lo),
                us(hi.saturating_sub(lo)),
                p.rounds
            );
        }
        for (span, &t0) in self.round_spans.iter().zip(&starts) {
            let _ = write!(
                out,
                ",{{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"cat\":\"round\",\"name\":\"round {}\",\
                 \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"inbox\":{},\"stepped\":{}}}}}",
                span.round,
                us(t0),
                us(span.total_ns),
                span.inbox_messages,
                span.nodes_stepped
            );
            for (w, &busy) in span.worker_busy_ns.iter().enumerate() {
                if busy == 0 {
                    continue;
                }
                let _ = write!(
                    out,
                    ",{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"cat\":\"worker\",\
                     \"name\":\"busy r{}\",\"ts\":{:.3},\"dur\":{:.3}}}",
                    10 + w,
                    span.round,
                    us(t0),
                    us(busy.min(span.total_ns))
                );
                let route = span.worker_route_ns.get(w).copied().unwrap_or(0);
                if route > 0 {
                    let _ = write!(
                        out,
                        ",{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"cat\":\"lane\",\
                         \"name\":\"route r{}\",\"ts\":{:.3},\"dur\":{:.3}}}",
                        10 + w,
                        span.round,
                        us(t0),
                        us(route.min(busy))
                    );
                }
            }
            let _ = write!(
                out,
                ",{{\"ph\":\"C\",\"pid\":0,\"name\":\"inbox messages\",\"ts\":{:.3},\
                 \"args\":{{\"messages\":{}}}}}",
                us(t0),
                span.inbox_messages
            );
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "profile [{}]: {} rounds, {:.3} ms wall = {:.3} ms node compute ({:.1}%) \
             + {:.3} ms engine overhead",
            self.engine,
            self.rounds,
            ms(self.wall_ns),
            ms(self.compute_ns),
            100.0 * self.compute_fraction(),
            ms(self.overhead_ns),
        )?;
        writeln!(f, "max inbox depth: {} messages", self.max_inbox_depth)?;
        if self.nodes_stepped > 0 {
            writeln!(f, "nodes stepped: {}", self.nodes_stepped)?;
        }
        if self.state_bytes_total > 0 {
            writeln!(
                f,
                "node state: {} bytes total, {} peak/node",
                self.state_bytes_total, self.state_bytes_peak
            )?;
        }
        if !self.phases.is_empty() {
            writeln!(
                f,
                "{:<16} {:>14} {:>8} {:>12} {:>12} {:>12} {:>10}",
                "phase", "span", "rounds", "wall ms", "compute ms", "overhead ms", "inbox msgs"
            )?;
            for p in &self.phases {
                writeln!(
                    f,
                    "{:<16} {:>6}..{:<6} {:>8} {:>12.3} {:>12.3} {:>12.3} {:>10}",
                    p.name,
                    p.start,
                    p.end,
                    p.rounds,
                    ms(p.wall_ns),
                    ms(p.compute_ns),
                    ms(p.overhead_ns),
                    p.inbox_messages,
                )?;
            }
        }
        if let Some(w) = &self.workers {
            writeln!(
                f,
                "workers: {} threads, utilization {:.1}%, imbalance {:.2}x, \
                 critical path {:.3} ms, routing {:.3} ms",
                w.workers,
                100.0 * w.utilization,
                w.imbalance,
                ms(w.critical_path_ns),
                ms(w.route_ns),
            )?;
        }
        if self.cross_shard_messages > 0 || self.intra_shard_messages > 0 {
            writeln!(
                f,
                "data plane: {} intra-shard + {} cross-shard messages",
                self.intra_shard_messages, self.cross_shard_messages,
            )?;
        }
        if let Some(s) = &self.sync {
            writeln!(
                f,
                "synchronizer: {} payload deliveries ({} skewed, max pulse skew {}), \
                 max event-queue depth {}",
                s.deliveries, s.skewed_deliveries, s.max_pulse_skew, s.max_queue_depth,
            )?;
        }
        if self.faults_injected > 0 || self.messages_retransmitted > 0 || self.messages_deduped > 0
        {
            writeln!(
                f,
                "reliability: {} faults injected, {} retransmits, {} duplicates discarded",
                self.faults_injected, self.messages_retransmitted, self.messages_deduped,
            )?;
        }
        if !self.stragglers.is_empty() {
            let s = &self.stragglers[0];
            write!(
                f,
                "stragglers: {} flagged (worst: {} round {}",
                self.stragglers.len(),
                s.kind,
                s.round
            )?;
            if let Some(w) = s.worker {
                write!(f, " worker {w}")?;
            }
            writeln!(
                f,
                ", {:.1}x the median baseline)",
                s.value as f64 / s.baseline.max(1) as f64
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(round: u64, total: u64, compute: u64, inbox: u64, workers: &[u64]) -> RoundSpan {
        RoundSpan {
            round,
            total_ns: total,
            compute_ns: compute,
            inbox_messages: inbox,
            worker_busy_ns: workers.to_vec(),
            ..RoundSpan::default()
        }
    }

    #[test]
    fn totals_and_phase_slicing() {
        let mut p = Profiler::new();
        p.record_round(span(0, 100, 60, 2, &[]));
        p.record_round(span(1, 200, 150, 5, &[]));
        p.record_round(span(2, 50, 10, 1, &[]));
        assert_eq!(p.wall_ns(), 350);
        assert_eq!(p.compute_ns(), 220);
        let ph = p.phase_span("B", 1, 3);
        assert_eq!(ph.rounds, 2);
        assert_eq!(ph.wall_ns, 250);
        assert_eq!(ph.compute_ns, 160);
        assert_eq!(ph.overhead_ns, 90);
        assert_eq!(ph.inbox_messages, 6);
        // Windows past the recording are silent.
        let tail = p.phase_span("D", 2, 10);
        assert_eq!(tail.rounds, 8);
        assert_eq!(tail.wall_ns, 50);
    }

    #[test]
    fn worker_stats_balanced_vs_skewed() {
        let mut balanced = Profiler::new();
        balanced.record_round(span(0, 100, 80, 0, &[40, 40]));
        let w = balanced.worker_stats().unwrap();
        assert_eq!(w.workers, 2);
        assert!((w.utilization - 1.0).abs() < 1e-9);
        assert!((w.imbalance - 1.0).abs() < 1e-9);

        let mut skewed = Profiler::new();
        skewed.record_round(span(0, 100, 80, 0, &[60, 20]));
        let w = skewed.worker_stats().unwrap();
        assert!((w.utilization - 80.0 / 120.0).abs() < 1e-9);
        assert!((w.imbalance - 1.5).abs() < 1e-9);

        // Serial recordings have no worker stats.
        let mut serial = Profiler::new();
        serial.record_round(span(0, 100, 80, 0, &[]));
        assert!(serial.worker_stats().is_none());
    }

    #[test]
    fn pulse_compute_accumulates_sparsely() {
        let mut p = Profiler::new();
        p.add_pulse_compute(2, 10);
        p.add_pulse_compute(0, 5);
        p.add_pulse_compute(2, 7);
        assert_eq!(p.spans().len(), 3);
        assert_eq!(p.spans()[0].compute_ns, 5);
        assert_eq!(p.spans()[1].compute_ns, 0);
        assert_eq!(p.spans()[2].compute_ns, 17);
    }

    #[test]
    fn report_renders_and_encodes() {
        let mut p = Profiler::new();
        p.record_round(span(0, 100, 60, 3, &[30, 30]));
        p.record_round(span(1, 100, 80, 4, &[50, 30]));
        p.sync_counters().deliveries = 10;
        p.sync_counters().max_pulse_skew = 1;
        let phases = vec![
            ("A:tree".to_string(), 0, 1),
            ("B:counting".to_string(), 1, 2),
        ];
        let rep = p.report("parallel(2)", &phases);
        assert_eq!(rep.rounds, 2);
        assert_eq!(rep.wall_ns, 200);
        assert_eq!(rep.compute_ns, 140);
        assert_eq!(rep.overhead_ns, 60);
        assert_eq!(rep.max_inbox_depth, 4);
        assert_eq!(rep.phases.len(), 2);
        assert!(rep.workers.is_some());
        assert!(rep.sync.is_some());
        let text = rep.to_string();
        assert!(text.contains("parallel(2)"));
        assert!(text.contains("B:counting"));
        assert!(text.contains("synchronizer"));
        let json = rep.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"engine\":\"parallel(2)\""));
        assert!(json.contains("\"workers\":{"));
        assert!(json.contains("\"sync\":{"));
        assert!(json.contains("\"phases\":["));
        assert!(json.starts_with("{\"schema_version\":1,"));
        assert!(json.contains("\"stragglers\":["));
    }

    #[test]
    fn straggler_detector_flags_busy_worker_and_deep_inbox() {
        let mut p = Profiler::new();
        // One worker 10x the round's median busy time, over the floor.
        p.record_round(span(
            0,
            3_000_000,
            0,
            4,
            &[250_000, 2_500_000, 260_000, 240_000],
        ));
        // Enough quiet rounds to establish an inbox-depth baseline…
        for r in 1..9 {
            p.record_round(span(r, 100_000, 0, 4, &[90_000, 90_000, 90_000, 90_000]));
        }
        // …then one round with a 25x inbox spike.
        p.record_round(span(9, 100_000, 0, 100, &[90_000, 90_000, 90_000, 90_000]));
        let rep = p.report("parallel(4)", &[]);
        assert!(
            rep.stragglers
                .iter()
                .any(|s| s.kind == "worker_busy" && s.round == 0 && s.worker == Some(1)),
            "missing worker_busy straggler in {:?}",
            rep.stragglers
        );
        assert!(
            rep.stragglers
                .iter()
                .any(|s| s.kind == "inbox_depth" && s.round == 9 && s.worker.is_none()),
            "missing inbox_depth straggler in {:?}",
            rep.stragglers
        );
        let json = rep.to_json();
        assert!(json.contains("\"kind\":\"worker_busy\""));
        assert!(rep.to_string().contains("stragglers:"));
    }

    #[test]
    fn straggler_detector_stays_quiet_on_balanced_runs() {
        let mut p = Profiler::new();
        for r in 0..10 {
            p.record_round(span(
                r,
                1_000_000,
                0,
                40,
                &[450_000, 460_000, 440_000, 455_000],
            ));
        }
        let rep = p.report("parallel(4)", &[]);
        assert!(rep.stragglers.is_empty(), "{:?}", rep.stragglers);
    }

    #[test]
    fn perfetto_export_nests_rounds_inside_phases() {
        let mut p = Profiler::new();
        p.record_round(RoundSpan {
            round: 0,
            total_ns: 2_000,
            compute_ns: 1_500,
            inbox_messages: 3,
            worker_busy_ns: vec![1_800, 900],
            worker_route_ns: vec![200, 100],
            ..RoundSpan::default()
        });
        p.record_round(RoundSpan {
            round: 1,
            total_ns: 3_000,
            compute_ns: 2_000,
            inbox_messages: 5,
            worker_busy_ns: vec![2_500, 2_400],
            worker_route_ns: vec![0, 300],
            ..RoundSpan::default()
        });
        let phases = vec![
            ("A:tree".to_string(), 0, 1),
            ("B:counting".to_string(), 1, 2),
        ];
        let rep = p.report("parallel(2)", &phases);
        let json = rep.to_perfetto_json();
        assert!(json.starts_with("{\"schema_version\":1,"));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        // Phase A covers exactly round 0: [0, 2) µs; round 1 starts where
        // phase B starts.
        assert!(json.contains("\"name\":\"A:tree\",\"ts\":0.000,\"dur\":2.000"));
        assert!(json.contains("\"name\":\"B:counting\",\"ts\":2.000,\"dur\":3.000"));
        assert!(json.contains("\"name\":\"round 1\",\"ts\":2.000,\"dur\":3.000"));
        // Worker busy spans are clamped into their round, lanes into busy.
        assert!(json.contains("\"cat\":\"worker\",\"name\":\"busy r0\",\"ts\":0.000,\"dur\":1.800"));
        assert!(json.contains("\"cat\":\"lane\",\"name\":\"route r0\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"name\":\"worker 1\""));
        // Every event object is well-formed enough to balance braces.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in perfetto json"
        );
    }

    #[test]
    fn route_and_shard_counters_flow_into_report() {
        let mut p = Profiler::new();
        p.record_round(RoundSpan {
            round: 0,
            total_ns: 100,
            compute_ns: 60,
            worker_busy_ns: vec![40, 40],
            worker_route_ns: vec![10, 5],
            cross_shard_messages: 3,
            intra_shard_messages: 7,
            ..RoundSpan::default()
        });
        p.record_round(RoundSpan {
            round: 1,
            total_ns: 100,
            compute_ns: 60,
            worker_busy_ns: vec![40, 40],
            worker_route_ns: vec![2, 3],
            cross_shard_messages: 1,
            intra_shard_messages: 9,
            ..RoundSpan::default()
        });
        let rep = p.report("parallel(2)", &[]);
        assert_eq!(rep.cross_shard_messages, 4);
        assert_eq!(rep.intra_shard_messages, 16);
        assert_eq!(rep.workers.unwrap().route_ns, 20);
        let json = rep.to_json();
        assert!(json.contains("\"cross_shard_messages\":4"));
        assert!(json.contains("\"intra_shard_messages\":16"));
        assert!(json.contains("\"route_ns\":20"));
        let text = rep.to_string();
        assert!(text.contains("routing 0.000 ms") || text.contains("routing"));
        assert!(text.contains("data plane: 16 intra-shard + 4 cross-shard"));
    }

    #[test]
    fn empty_profiler_reports_zeroes() {
        let rep = Profiler::new().report("serial", &[]);
        assert_eq!(rep.wall_ns, 0);
        assert_eq!(rep.compute_fraction(), 0.0);
        assert!(rep.workers.is_none());
        assert!(rep.sync.is_none());
    }
}
