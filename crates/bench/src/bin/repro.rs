//! Regenerates every experiment table in `EXPERIMENTS.md`.
//!
//! Usage:
//!   repro [--quick] [--json] [e1 e2 ... | all]
//!
//! `--quick` runs reduced scales (seconds instead of minutes). Default
//! output is the markdown that `EXPERIMENTS.md` embeds; `--json` emits a
//! machine-readable array of reports instead.

use bc_bench::{run_experiment, ExperimentReport, ALL_EXPERIMENTS};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    let ids: Vec<String> = if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect()
    } else {
        ids
    };
    if json {
        let reports: Vec<ExperimentReport> = ids
            .iter()
            .flat_map(|id| run_experiment(id, quick))
            .collect();
        println!("{}", to_json(&reports));
        return;
    }
    println!(
        "# distbc experiment reproduction ({} scale)\n",
        if quick { "quick" } else { "full" }
    );
    let total = Instant::now();
    for id in &ids {
        let start = Instant::now();
        for report in run_experiment(id, quick) {
            println!("{report}");
        }
        println!("_{} finished in {:.1?}_\n", id, start.elapsed());
    }
    println!("_total: {:.1?}_", total.elapsed());
}

/// Tiny JSON encoder for the report shape (strings, arrays, one struct),
/// avoiding any external JSON dependency for one flag.
fn to_json(reports: &[ExperimentReport]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    fn arr(items: &[String]) -> String {
        let inner: Vec<String> = items.iter().map(|i| format!("\"{}\"", esc(i))).collect();
        format!("[{}]", inner.join(","))
    }
    let objs: Vec<String> = reports
        .iter()
        .map(|r| {
            let rows: Vec<String> = r.rows.iter().map(|row| arr(row)).collect();
            format!(
                "{{\"id\":\"{}\",\"title\":\"{}\",\"headers\":{},\"rows\":[{}],\"notes\":{}}}",
                esc(&r.id),
                esc(&r.title),
                arr(&r.headers),
                rows.join(","),
                arr(&r.notes)
            )
        })
        .collect();
    format!("[{}]", objs.join(","))
}
