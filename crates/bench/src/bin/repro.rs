//! Regenerates every experiment table in `EXPERIMENTS.md`.
//!
//! Usage:
//!   repro [--quick] [--json] [--artifacts DIR] [e1 e2 ... | all]
//!
//! `--quick` runs reduced scales (seconds instead of minutes). Default
//! output is the markdown that `EXPERIMENTS.md` embeds; `--json` emits a
//! machine-readable array of reports instead.
//!
//! `--artifacts DIR` writes the machine-readable side outputs there:
//! every artifact an experiment attached (e.g. E15's
//! `BENCH_profile.json`), plus `BENCH_rounds.json` — the
//! rounds/messages/bits of every distributed run across the selected
//! experiments, for CI perf diffing. Experiments themselves never touch
//! the filesystem; this binary is the only writer.

use bc_bench::{run_experiment, ExperimentReport, ALL_EXPERIMENTS};
use std::path::Path;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let artifacts_dir: Option<String> =
        args.iter()
            .position(|a| a == "--artifacts")
            .map(|i| match args.get(i + 1) {
                Some(dir) => dir.clone(),
                None => {
                    eprintln!("repro: --artifacts needs a DIR");
                    std::process::exit(2);
                }
            });
    let mut skip_next = false;
    let ids: Vec<String> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--artifacts" {
                skip_next = true;
            }
            !a.starts_with("--")
        })
        .cloned()
        .collect();
    let ids: Vec<String> = if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect()
    } else {
        ids
    };
    if json {
        let mut reports: Vec<ExperimentReport> = Vec::new();
        for id in &ids {
            reports.extend(run_experiment(id, quick).unwrap_or_else(|e| fail(&e)));
        }
        if let Some(dir) = &artifacts_dir {
            write_artifacts(Path::new(dir), &reports, quick);
        }
        println!("{}", to_json(&reports));
        return;
    }
    println!(
        "# distbc experiment reproduction ({} scale)\n",
        if quick { "quick" } else { "full" }
    );
    let total = Instant::now();
    let mut all_reports: Vec<ExperimentReport> = Vec::new();
    for id in &ids {
        let start = Instant::now();
        for report in run_experiment(id, quick).unwrap_or_else(|e| fail(&e)) {
            println!("{report}");
            all_reports.push(report);
        }
        println!("_{} finished in {:.1?}_\n", id, start.elapsed());
    }
    println!("_total: {:.1?}_", total.elapsed());
    if let Some(dir) = &artifacts_dir {
        write_artifacts(Path::new(dir), &all_reports, quick);
    }
}

/// Reports a bad experiment id on stderr and exits nonzero.
fn fail(e: &bc_bench::UnknownExperiment) -> ! {
    eprintln!("repro: {e}");
    std::process::exit(2);
}

/// Writes every experiment-attached artifact plus the aggregated
/// `BENCH_rounds.json` into `dir` (created if missing).
fn write_artifacts(dir: &Path, reports: &[ExperimentReport], quick: bool) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("repro: cannot create artifacts dir {}: {e}", dir.display());
        std::process::exit(2);
    }
    let write = |path: &Path, content: &str| {
        if let Err(e) = std::fs::write(path, content) {
            eprintln!("repro: cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
        eprintln!("wrote {} ({} bytes)", path.display(), content.len());
    };
    for r in reports {
        for (name, content) in &r.artifacts {
            write(&dir.join(name), content);
        }
    }
    write(&dir.join("BENCH_rounds.json"), &rounds_json(reports, quick));
}

/// The aggregated perf-trajectory file: one record per distributed run
/// across all selected experiments.
fn rounds_json(reports: &[ExperimentReport], quick: bool) -> String {
    let mut recs: Vec<String> = Vec::new();
    for r in reports {
        for p in &r.perf {
            recs.push(format!(
                "{{\"experiment\":\"{}\",\"run\":\"{}\",\"rounds\":{},\"messages\":{},\"bits\":{}}}",
                esc(&r.id),
                esc(&p.run),
                p.rounds,
                p.messages,
                p.bits
            ));
        }
    }
    format!(
        "{{\"schema_version\":{},\"scale\":\"{}\",\"runs\":[{}]}}",
        bc_congest::SCHEMA_VERSION,
        if quick { "quick" } else { "full" },
        recs.join(",")
    )
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Tiny JSON encoder for the report shape (strings, arrays, one struct),
/// avoiding any external JSON dependency for one flag.
fn to_json(reports: &[ExperimentReport]) -> String {
    fn arr(items: &[String]) -> String {
        let inner: Vec<String> = items.iter().map(|i| format!("\"{}\"", esc(i))).collect();
        format!("[{}]", inner.join(","))
    }
    let objs: Vec<String> = reports
        .iter()
        .map(|r| {
            let rows: Vec<String> = r.rows.iter().map(|row| arr(row)).collect();
            format!(
                "{{\"id\":\"{}\",\"title\":\"{}\",\"headers\":{},\"rows\":[{}],\"notes\":{}}}",
                esc(&r.id),
                esc(&r.title),
                arr(&r.headers),
                rows.join(","),
                arr(&r.notes)
            )
        })
        .collect();
    format!("[{}]", objs.join(","))
}
