//! CI guard against round-engine wall-clock regressions.
//!
//! Usage:
//!   bench_guard FRESH.json BASELINE.json [--threshold FACTOR] [--metric NAME]
//!
//! Both files hold the `{"profiles":[{"graph":...,"profile":{...}},...]}`
//! shape written by E15 (`BENCH_profile.json`), E16 (`BENCH_engine.json`),
//! and E17 (`BENCH_faults.json`). Every `(graph, engine)` key present in
//! *both* files is compared: the run fails (exit 1) when any fresh metric
//! value exceeds `FACTOR ×` its baseline (default 1.25), or when the files
//! share no keys at all — a silent no-op guard is itself a failure.
//!
//! `--metric` selects which integer field of each record is compared
//! (default `wall_ns`). Wall clocks are host-dependent, so that default is
//! only meaningful when fresh and baseline numbers come from comparable
//! machines (in CI: the same runner class); the generous default threshold
//! absorbs runner noise while still catching engine-level slowdowns.
//! E17's `--metric overhead_permille` is deterministic (a rounds ratio)
//! and compares exactly across hosts.
//!
//! Both files must carry a top-level `"schema_version"` matching the
//! version this binary was built against ([`bc_congest::SCHEMA_VERSION`]);
//! a missing or unknown version exits 2 instead of silently comparing
//! mismatched shapes.

use bc_congest::SCHEMA_VERSION;
use std::process::exit;

/// One `(graph, engine) → metric` record scraped from a profiles file.
#[derive(Debug, Clone, PartialEq)]
struct Record {
    graph: String,
    engine: String,
    value: u64,
}

/// Extracts the string following `marker` up to the next `"`.
fn string_after(text: &str, marker: &str) -> Option<(String, usize)> {
    let start = text.find(marker)? + marker.len();
    let end = start + text[start..].find('"')?;
    Some((text[start..end].to_string(), end))
}

/// Extracts the integer following `marker`.
fn number_after(text: &str, marker: &str) -> Option<(u64, usize)> {
    let start = text.find(marker)? + marker.len();
    let digits: String = text[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    if digits.is_empty() {
        return None;
    }
    Some((digits.parse().ok()?, start + digits.len()))
}

/// Scrapes all records from a profiles JSON document. Relies on the field
/// order `to_json` guarantees: within each record, `"graph"` precedes
/// `"engine"`, which precedes the record's `metric` field (for the
/// default `wall_ns`, the per-phase `wall_ns` fields all come later,
/// inside `"phases"`, so the profile-level one wins).
fn parse_profiles(text: &str, metric: &str) -> Vec<Record> {
    let marker = format!("\"{metric}\":");
    let mut records = Vec::new();
    let mut rest = text;
    while let Some((graph, at)) = string_after(rest, "\"graph\":\"") {
        rest = &rest[at..];
        let Some((engine, at)) = string_after(rest, "\"engine\":\"") else {
            break;
        };
        rest = &rest[at..];
        let Some((value, at)) = number_after(rest, &marker) else {
            break;
        };
        rest = &rest[at..];
        records.push(Record {
            graph,
            engine,
            value,
        });
    }
    records
}

fn read_profiles(path: &str, metric: &str) -> Vec<Record> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_guard: cannot read {path}: {e}");
        exit(2);
    });
    match number_after(&text, "\"schema_version\":") {
        None => {
            eprintln!(
                "bench_guard: {path} has no schema_version field — refusing to compare \
                 an unversioned artifact (expected schema_version {SCHEMA_VERSION})"
            );
            exit(2);
        }
        Some((v, _)) if v != u64::from(SCHEMA_VERSION) => {
            eprintln!(
                "bench_guard: {path} carries schema_version {v}, but this binary \
                 understands schema_version {SCHEMA_VERSION} — regenerate the artifact \
                 or update the baseline"
            );
            exit(2);
        }
        Some(_) => {}
    }
    let records = parse_profiles(&text, metric);
    if records.is_empty() {
        eprintln!("bench_guard: {path} holds no (graph, engine, {metric}) records");
        exit(2);
    }
    records
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threshold = 1.25f64;
    let mut metric = String::from("wall_ns");
    let mut paths: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--threshold" {
            threshold = args
                .get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("bench_guard: --threshold needs a number");
                    exit(2);
                });
            i += 2;
        } else if args[i] == "--metric" {
            metric = args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("bench_guard: --metric needs a field name");
                exit(2);
            });
            i += 2;
        } else {
            paths.push(&args[i]);
            i += 1;
        }
    }
    let [fresh_path, baseline_path] = paths.as_slice() else {
        eprintln!(
            "usage: bench_guard FRESH.json BASELINE.json [--threshold FACTOR] [--metric NAME]"
        );
        exit(2);
    };
    let fresh = read_profiles(fresh_path, &metric);
    let baseline = read_profiles(baseline_path, &metric);

    let mut compared = 0usize;
    let mut regressions: Vec<(Record, u64, f64)> = Vec::new();
    println!(
        "{:<20} {:<16} {:>12} {:>12} {:>7}",
        "graph",
        "engine",
        format!("base {metric}"),
        format!("fresh {metric}"),
        "ratio"
    );
    for f in &fresh {
        let Some(b) = baseline
            .iter()
            .find(|b| b.graph == f.graph && b.engine == f.engine)
        else {
            continue;
        };
        compared += 1;
        let ratio = f.value as f64 / b.value.max(1) as f64;
        let verdict = if ratio > threshold {
            regressions.push((f.clone(), b.value, ratio));
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{:<20} {:<16} {:>12} {:>12} {:>6.2}x {}",
            f.graph, f.engine, b.value, f.value, ratio, verdict
        );
    }
    if compared == 0 {
        eprintln!(
            "bench_guard: no (graph, engine) keys shared between {fresh_path} and \
             {baseline_path} — the guard compared nothing"
        );
        exit(1);
    }
    println!(
        "compared {compared} records, threshold {threshold}x, {} regressed",
        regressions.len()
    );
    if !regressions.is_empty() {
        // A CI failure is read far from this table: spell out exactly what
        // regressed, against which baseline file, and by how much.
        for (f, base, ratio) in &regressions {
            eprintln!(
                "bench_guard: REGRESSED ({graph}, {engine}): {metric} {fresh} vs baseline \
                 {base} in {baseline_path} — {ratio:.2}x exceeds the allowed {threshold}x \
                 (max permitted: {max})",
                graph = f.graph,
                engine = f.engine,
                fresh = f.value,
                max = (*base as f64 * threshold) as u64,
            );
        }
        exit(1);
    }
}
