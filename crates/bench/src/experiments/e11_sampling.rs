//! E11 (extension) — sampled-source approximation: the related-work
//! approach (Brandes–Pich centrally; Holzer's thesis distributively)
//! implemented inside the paper's protocol. Only `k` nodes launch BFS
//! waves; betweenness is extrapolated by `N/k`. Measures estimate quality
//! and traffic against the exact run.

use crate::ExperimentReport;
use bc_brandes::betweenness_f64;
use bc_brandes::ranking::{kendall_tau, top_k_overlap};
use bc_core::{run_distributed_bc, DistBcConfig, SourceSelection};
use bc_graph::generators;

/// Runs E11.
pub fn run(quick: bool) -> ExperimentReport {
    let n = if quick { 48 } else { 96 };
    let g = generators::barabasi_albert(n, 3, 6);
    let exact = betweenness_f64(&g);
    let full = run_distributed_bc(&g, DistBcConfig::default()).expect("runs");
    let ks: &[usize] = if quick {
        &[n / 8, n / 2]
    } else {
        &[n / 16, n / 8, n / 4, n / 2]
    };
    let mut rep = ExperimentReport::new(
        "E11",
        "extension: sampled sources — estimate error vs traffic saved",
        &[
            "k (sources)",
            "traffic vs exact",
            "rounds",
            "mean rel err (top-10)",
            "Kendall τ",
            "top-10 overlap",
        ],
    );
    // Exact top-10 nodes for quality scoring.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| exact[b].total_cmp(&exact[a]));
    let top: Vec<usize> = order.iter().take(10).copied().collect();
    let mut taus: Vec<f64> = Vec::new();
    for &k in ks {
        // Average over seeds to show the estimator is unbiased.
        let seeds: u64 = if quick { 3 } else { 5 };
        let mut mean = vec![0.0f64; n];
        let mut traffic = 0u64;
        let mut rounds = 0u64;
        for seed in 0..seeds {
            let out = run_distributed_bc(
                &g,
                DistBcConfig {
                    sources: SourceSelection::Sample { k, seed },
                    ..DistBcConfig::default()
                },
            )
            .expect("runs");
            assert!(out.metrics.congest_compliant());
            traffic += out.metrics.total_bits / seeds;
            rounds = out.rounds;
            for (m, e) in mean.iter_mut().zip(&out.betweenness) {
                *m += e / seeds as f64;
            }
        }
        let err: f64 = top
            .iter()
            .map(|&v| (mean[v] - exact[v]).abs() / exact[v].max(1.0))
            .sum::<f64>()
            / top.len() as f64;
        let tau = kendall_tau(&exact, &mean);
        taus.push(tau);
        let overlap = top_k_overlap(&exact, &mean, 10);
        rep.push_row(vec![
            k.to_string(),
            format!(
                "{:.0}%",
                100.0 * traffic as f64 / full.metrics.total_bits as f64
            ),
            rounds.to_string(),
            format!("{err:.2}"),
            format!("{tau:.2}"),
            format!("{:.0}%", 100.0 * overlap),
        ]);
    }
    assert!(
        taus.windows(2).all(|w| w[1] >= w[0] - 0.1),
        "rank quality must (weakly) improve with k: {taus:?}"
    );
    rep.note(format!(
        "traffic scales ≈ k/N while the exact run used {} kbit; rank quality (Kendall τ, \
         top-10 recovery) climbs with k — the sampling/exactness trade-off the paper's \
         related work discusses (the paper's own algorithm is the k = N column: exact, \
         deterministic)",
        full.metrics.total_bits / 1000
    ));
    rep
}
