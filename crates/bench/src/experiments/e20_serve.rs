//! E20 — serving throughput under recompute: a live `bc-serve` server
//! over a real Unix-domain socket, hammered by concurrent reader
//! clients while a writer client streams add-edge/remove-edge
//! mutations through flush cycles.
//!
//! Two phases per graph: an *idle* window (readers only — the ceiling)
//! and a *churn* window (the same readers while every snapshot is
//! being recomputed and swapped behind them). The spread between the
//! two prices the epoch-swap design: reads never block on recompute,
//! so churn throughput should stay the same order of magnitude as
//! idle. Each flush round trip is timed as the observable
//! snapshot-swap latency (enqueue → recompute → publish → ack).
//!
//! Every reader asserts the batch-atomicity contract while it measures:
//! all responses in one batch carry one snapshot version, and versions
//! never move backwards on a connection.

use crate::ExperimentReport;
use bc_congest::SCHEMA_VERSION;
use bc_graph::{generators, Graph};
use bc_serve::{
    IncrementalEngine, QueryClient, QueryRequest, QueryResponse, RecomputeEngine, Server,
    ServerConfig,
};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

static SOCKET_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh `unix:` socket address, unique across runs and processes.
fn socket_addr() -> String {
    let pid = std::process::id();
    let seq = SOCKET_SEQ.fetch_add(1, Ordering::Relaxed);
    let path = std::env::temp_dir().join(format!("bcw-e20-{pid}-{seq}.sock"));
    format!("unix:{}", path.display())
}

/// The version every response in `resps` carries (panics on a torn
/// batch — the contract E20 rides on).
fn batch_version(resps: &[QueryResponse]) -> u64 {
    let mut version = None;
    for r in resps {
        let v = match r {
            QueryResponse::Ranked { version, .. }
            | QueryResponse::Score { version, .. }
            | QueryResponse::Value { version, .. }
            | QueryResponse::Meta { version, .. } => *version,
            other => panic!("reader got a non-read response: {other:?}"),
        };
        match version {
            None => version = Some(v),
            Some(prev) => assert_eq!(prev, v, "torn batch: two versions in one response frame"),
        }
    }
    version.expect("non-empty batch")
}

/// Spawns `readers` client threads issuing 3-request batches until
/// `stop` flips; returns total requests answered.
fn read_load(readers: usize, addr: &str, n: usize, stop: &Arc<AtomicBool>) -> u64 {
    let handles: Vec<_> = (0..readers)
        .map(|r| {
            let addr = addr.to_string();
            let stop = Arc::clone(stop);
            thread::spawn(move || {
                let mut client = QueryClient::connect(&addr).expect("reader connects");
                let mut answered = 0u64;
                let mut last_version = 0u64;
                let mut i = r as u32;
                while !stop.load(Ordering::Relaxed) {
                    let reqs = [
                        QueryRequest::TopK { k: 10 },
                        QueryRequest::Node { v: i % n as u32 },
                        QueryRequest::Percentile { p: 95.0 },
                    ];
                    let resps = client.batch(&reqs).expect("reader batch");
                    let v = batch_version(&resps);
                    assert!(v >= last_version, "snapshot version moved backwards");
                    last_version = v;
                    answered += resps.len() as u64;
                    i = i.wrapping_add(1);
                }
                client.close();
                answered
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("reader thread"))
        .sum()
}

/// Runs E20: serving throughput under concurrent recompute, with its
/// `BENCH_serve.json` artifact.
pub fn run(quick: bool) -> ExperimentReport {
    let n: usize = if quick { 40 } else { 96 };
    let readers = if quick { 2 } else { 4 };
    let cycles = if quick { 3 } else { 10 };
    let idle_window = Duration::from_millis(if quick { 150 } else { 500 });
    let family = format!("er-{n}");
    let g = generators::erdos_renyi_connected(n, (8.0 / n as f64).min(0.5), 7);
    let (u, v) = non_edge(&g);

    let engine = RecomputeEngine::Incremental(IncrementalEngine::new(g.clone(), n));
    let shutdown = Arc::new(AtomicBool::new(false));
    let addr = socket_addr();
    let server = Server::bind(
        engine,
        ServerConfig {
            listen: addr,
            algo: "brandes".to_string(),
            config_hash: 0,
            telemetry: None,
        },
        Arc::clone(&shutdown),
    )
    .expect("server binds");
    let dial = server.addr().to_string();
    let server = thread::spawn(move || server.run().expect("server run"));

    let mut rep = ExperimentReport::new(
        "E20",
        "serving throughput under recompute (concurrent readers vs snapshot swaps)",
        &[
            "graph",
            "phase",
            "readers",
            "queries",
            "elapsed ms",
            "qps",
            "swaps",
            "mean swap ms",
            "max swap ms",
        ],
    );
    let mut json_entries: Vec<String> = Vec::new();
    let mut emit = |phase: &str, queries: u64, elapsed: Duration, swaps: &[Duration]| {
        let secs = elapsed.as_secs_f64().max(1e-9);
        let qps = queries as f64 / secs;
        let mean_ms = if swaps.is_empty() {
            0.0
        } else {
            swaps.iter().map(Duration::as_secs_f64).sum::<f64>() / swaps.len() as f64 * 1e3
        };
        let max_ms = swaps
            .iter()
            .map(|d| d.as_secs_f64() * 1e3)
            .fold(0.0, f64::max);
        rep.push_row(vec![
            family.clone(),
            phase.to_string(),
            readers.to_string(),
            queries.to_string(),
            format!("{:.1}", secs * 1e3),
            format!("{qps:.0}"),
            swaps.len().to_string(),
            format!("{mean_ms:.3}"),
            format!("{max_ms:.3}"),
        ]);
        // `engine` keys the row for `bench_guard` (graph, engine) matching.
        json_entries.push(format!(
            "{{\"graph\":\"{family}\",\"engine\":\"{phase}\",\"readers\":{readers},\
             \"queries\":{queries},\"elapsed_ns\":{},\"qps\":{qps:.1},\"swaps\":{},\
             \"mean_swap_ns\":{},\"max_swap_ns\":{}}}",
            elapsed.as_nanos(),
            swaps.len(),
            (mean_ms * 1e6) as u64,
            (max_ms * 1e6) as u64,
        ));
    };

    // Phase 1 — idle: readers only, no recompute behind them.
    let (queries, elapsed) = timed_read_window(readers, &dial, n, idle_window);
    emit("idle", queries, elapsed, &[]);

    // Phase 2 — churn: same read load while a writer cycles the edge
    // {u,v} in and out, flushing after every mutation so each cycle
    // publishes two snapshot versions.
    let stop = Arc::new(AtomicBool::new(false));
    let (queries, elapsed, swaps) = thread::scope(|s| {
        let stop_readers = Arc::clone(&stop);
        let dial_ref = &dial;
        let pool = s.spawn(move || read_load(readers, dial_ref, n, &stop_readers));
        let start = Instant::now();
        let mut writer = QueryClient::connect(&dial).expect("writer connects");
        let mut swaps = Vec::with_capacity(2 * cycles);
        for _ in 0..cycles {
            for m in [
                QueryRequest::AddEdge { u, v },
                QueryRequest::RemoveEdge { u, v },
            ] {
                let t0 = Instant::now();
                let resps = writer
                    .batch(&[m, QueryRequest::Flush])
                    .expect("mutation batch");
                assert!(
                    matches!(resps[0], QueryResponse::MutationQueued { .. }),
                    "mutation rejected: {resps:?}"
                );
                assert!(
                    matches!(resps[1], QueryResponse::Flushed { .. }),
                    "flush failed: {resps:?}"
                );
                swaps.push(t0.elapsed());
            }
        }
        writer.close();
        let elapsed = start.elapsed();
        stop.store(true, Ordering::Relaxed);
        (pool.join().expect("reader pool"), elapsed, swaps)
    });
    emit("churn", queries, elapsed, &swaps);

    shutdown.store(true, Ordering::SeqCst);
    let stats = server.join().expect("server thread");
    assert_eq!(
        stats.snapshots_published,
        2 * cycles as u64,
        "every mutation must publish exactly one snapshot version"
    );
    assert_eq!(stats.malformed, 0, "benchmark clients are well-formed");

    let mut artifact =
        format!("{{\"schema_version\":{SCHEMA_VERSION},\"experiment\":\"E20\",\"profiles\":[");
    let _ = write!(artifact, "{}", json_entries.join(","));
    artifact.push_str("]}");
    rep.add_artifact("BENCH_serve.json", artifact);
    rep.note(
        "reads are answered from an immutable snapshot behind an epoch \
         swap, so the churn window keeps serving at the idle order of \
         magnitude while every snapshot behind it is recomputed; each \
         swap latency is a full mutation→recompute→publish→ack round \
         trip observed by the writer client"
            .to_string(),
    );
    rep.note(
        "readers assert batch atomicity (one version per response frame, \
         versions monotone per connection) on every single batch, so the \
         throughput numbers double as a linearizability soak"
            .to_string(),
    );
    rep
}

/// Readers-only measured window.
fn timed_read_window(readers: usize, addr: &str, n: usize, w: Duration) -> (u64, Duration) {
    let stop = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    let queries = thread::scope(|s| {
        let stop_readers = Arc::clone(&stop);
        let pool = s.spawn(move || read_load(readers, addr, n, &stop_readers));
        thread::sleep(w);
        stop.store(true, Ordering::Relaxed);
        pool.join().expect("reader pool")
    });
    (queries, start.elapsed())
}

/// First node pair the generator left unconnected.
fn non_edge(g: &Graph) -> (u32, u32) {
    let n = g.n() as u32;
    (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
        .find(|&(u, v)| !g.has_edge(u, v))
        .expect("a non-edge exists")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_serve_bench_reports_both_phases() {
        let rep = run(true);
        assert_eq!(rep.rows.len(), 2);
        assert_eq!(rep.rows[0][1], "idle");
        assert_eq!(rep.rows[1][1], "churn");
        // Both windows actually served queries.
        for row in &rep.rows {
            let queries: u64 = row[3].parse().expect("query count");
            assert!(queries > 0, "window served nothing: {row:?}");
        }
        // The churn window timed every swap (3 cycles × add+remove).
        assert_eq!(rep.rows[1][6], "6");
        let (name, artifact) = &rep.artifacts[0];
        assert_eq!(name, "BENCH_serve.json");
        assert!(artifact.starts_with("{\"schema_version\":1,"));
        assert!(artifact.contains("\"experiment\":\"E20\""));
        assert!(artifact.contains("\"engine\":\"churn\""));
        assert!(artifact.contains("\"mean_swap_ns\":"));
    }
}
