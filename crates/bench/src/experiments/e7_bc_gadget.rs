//! E7 — Figure 3 / Lemma 9: the betweenness gadget's dichotomy.
//! `C_B(F_i) = 1.5` exactly when `X_i` appears in Bob's family, `1`
//! otherwise, so a 0.499-relative-error BC algorithm decides sparse set
//! disjointness (Theorem 6).

use crate::ExperimentReport;
use bc_brandes::betweenness_f64;
use bc_core::{run_distributed_bc, DistBcConfig};
use bc_lowerbound::disjoint::{random_instance, universe_size};
use bc_lowerbound::{bc_gadget, BC_IF_ABSENT, BC_IF_PRESENT};

/// Runs E7.
pub fn run(quick: bool) -> ExperimentReport {
    let ns: &[usize] = if quick { &[4, 8] } else { &[4, 8, 16, 32] };
    let mut rep = ExperimentReport::new(
        "E7",
        "Lemma 9 — betweenness gadget: C_B(F_i) ∈ {1, 1.5} encodes membership",
        &[
            "instance n",
            "N",
            "planted",
            "F_i at 1.0",
            "F_i at 1.5",
            "all correct",
            "distributed max |err|",
        ],
    );
    for &n in ns {
        let m = universe_size(n);
        for planted in [false, true] {
            let inst = random_instance(n, m, planted, 29 + n as u64);
            let g = bc_gadget(&inst);
            let cb = betweenness_f64(&g.graph);
            let mut at_one = 0;
            let mut at_three_halves = 0;
            let mut all_correct = true;
            for (i, &fi) in g.f.iter().enumerate() {
                let present = inst.y.sets.contains(&inst.x.sets[i]);
                let expect = if present { BC_IF_PRESENT } else { BC_IF_ABSENT };
                if (cb[fi as usize] - BC_IF_ABSENT).abs() < 1e-9 {
                    at_one += 1;
                } else if (cb[fi as usize] - BC_IF_PRESENT).abs() < 1e-9 {
                    at_three_halves += 1;
                }
                all_correct &= (cb[fi as usize] - expect).abs() < 1e-9;
            }
            // Distributed check on the smaller gadgets.
            let dist_err = if g.graph.n() <= 120 {
                let out =
                    run_distributed_bc(&g.graph, DistBcConfig::default()).expect("gadget runs");
                let err =
                    g.f.iter()
                        .map(|&fi| (out.betweenness[fi as usize] - cb[fi as usize]).abs())
                        .fold(0.0f64, f64::max);
                assert!(err < 0.25, "distributed BC distinguishes 1 from 1.5");
                format!("{err:.1e}")
            } else {
                "-".into()
            };
            rep.push_row(vec![
                n.to_string(),
                g.graph.n().to_string(),
                planted.to_string(),
                at_one.to_string(),
                at_three_halves.to_string(),
                all_correct.to_string(),
                dist_err,
            ]);
            assert!(all_correct, "Lemma 9 violated at n={n} planted={planted}");
            assert_eq!(at_three_halves > 0, planted);
        }
    }
    rep.note(
        "computing BC to 0.499 relative error distinguishes 1 from 1.5, hence decides \
         disjointness ⇒ Ω(D + N/log N) rounds (Theorem 6); the distributed algorithm's \
         error (O(N^-c)) is far below the 0.25 decision margin"
            .to_string(),
    );
    rep
}
