//! E16 — round-engine throughput: best-of-N wall clock of the serial and
//! pooled-parallel engines on the E15 graph families, normalized to
//! ns/round, with the idle-skipping active set quantified via the
//! engine's `nodes_stepped` counter.
//!
//! Like E15, the wall-clock columns describe the *host*; the artifact
//! (`BENCH_engine.json`) reuses the E15 `profiles` shape so `bench_guard`
//! can diff it against the committed `BENCH_profile.json` baseline by
//! `(graph, engine)` key. Results are asserted bit-identical across all
//! engines and thread counts before any row is emitted.

use crate::ExperimentReport;
use bc_congest::{ProfileReport, Telemetry, SCHEMA_VERSION};
use bc_core::{run_distributed_bc_profiled, DistBcConfig};
use std::fmt::Write as _;
use std::sync::Arc;

use super::e15_profile::families;

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Runs the config `reps` times, returning the run output once and the
/// lowest-wall-clock profile (best-of-N suppresses scheduler noise).
fn best_profile(
    g: &bc_graph::Graph,
    cfg: &DistBcConfig,
    reps: usize,
) -> (bc_core::DistBcResult, ProfileReport) {
    let (out, mut best) = run_distributed_bc_profiled(g, cfg.clone()).expect("run succeeds");
    for _ in 1..reps {
        let (_, p) = run_distributed_bc_profiled(g, cfg.clone()).expect("run succeeds");
        if p.wall_ns < best.wall_ns {
            best = p;
        }
    }
    (out, best)
}

fn push_row(rep: &mut ExperimentReport, family: &str, n: usize, profile: &ProfileReport) {
    let rounds = profile.rounds.max(1);
    let stepped_share = profile.nodes_stepped as f64 / (rounds * n as u64) as f64;
    rep.push_row(vec![
        family.to_string(),
        profile.engine.clone(),
        profile.rounds.to_string(),
        format!("{:.3}", ms(profile.wall_ns)),
        format!("{:.0}", profile.wall_ns as f64 / rounds as f64),
        format!("{:.0}", profile.overhead_ns as f64 / rounds as f64),
        profile.nodes_stepped.to_string(),
        format!("{:.1}%", 100.0 * stepped_share),
    ]);
}

/// Runs E16: engine throughput across families and thread counts, with
/// the `BENCH_engine.json` artifact for the CI regression guard. Full
/// runs sweep n ∈ {64, 256}: 64 is where serial wins (the historical
/// baseline), 256 is where the sharded parallel engine starts paying —
/// baselining only the small size would let a parallel regression hide
/// (E18 sweeps the ratio itself).
pub fn run(quick: bool) -> ExperimentReport {
    let sizes: &[usize] = if quick { &[24] } else { &[64, 256] };
    let reps = if quick { 1 } else { 3 };
    let mut rep = ExperimentReport::new(
        "E16",
        "round-engine throughput (wall-clock; host-dependent baseline)",
        &[
            "graph",
            "engine",
            "rounds",
            "wall ms",
            "ns/round",
            "overhead ns/round",
            "nodes stepped",
            "step share",
        ],
    );
    let mut json_entries: Vec<String> = Vec::new();
    let mut telemetry_entries: Vec<String> = Vec::new();
    for (family, g) in sizes.iter().flat_map(|&n| families(n)) {
        let gn = g.n();
        // Reference: serial with idle skipping off — every node steps
        // every round, the pre-active-set behaviour.
        let (noskip_out, mut noskip_profile) = best_profile(
            &g,
            &DistBcConfig {
                skip_idle: false,
                ..DistBcConfig::default()
            },
            reps,
        );
        noskip_profile.engine = "serial/no-skip".to_string();
        push_row(&mut rep, &family, gn, &noskip_profile);

        for threads in [0usize, 2, 4] {
            let cfg = DistBcConfig {
                threads,
                ..DistBcConfig::default()
            };
            let (out, profile) = best_profile(&g, &cfg, reps);
            assert_eq!(
                out.betweenness, noskip_out.betweenness,
                "{family}: engine (threads={threads}) diverged from the no-skip serial run"
            );
            assert_eq!(
                out.metrics, noskip_out.metrics,
                "{family}: metrics diverged"
            );
            rep.push_perf(
                format!("{family}/{}", profile.engine),
                out.rounds,
                out.metrics.total_messages,
                out.metrics.total_bits,
            );
            push_row(&mut rep, &family, gn, &profile);
            json_entries.push(format!(
                "{{\"graph\":\"{family}\",\"profile\":{}}}",
                profile.to_json()
            ));

            // Same config with the always-on telemetry layer attached: the
            // result must stay bit-identical, and the wall-clock ratio
            // (1000 = parity, like E18's ratio_permille) quantifies the
            // steady-state cost of leaving telemetry enabled by default.
            let tel_cfg = DistBcConfig {
                telemetry: Some(Arc::new(Telemetry::new(threads.max(1), 64))),
                ..cfg.clone()
            };
            let (tel_out, tel_profile) = best_profile(&g, &tel_cfg, reps);
            assert_eq!(
                tel_out.betweenness, noskip_out.betweenness,
                "{family}: telemetry-on run (threads={threads}) diverged from telemetry-off"
            );
            assert_eq!(
                tel_out.metrics, noskip_out.metrics,
                "{family}: telemetry-on metrics diverged"
            );
            let overhead_permille = tel_profile.wall_ns * 1000 / profile.wall_ns.max(1);
            telemetry_entries.push(format!(
                "{{\"graph\":\"{family}\",\"engine\":\"{}\",\"wall_ns\":{},\
                 \"telemetry_wall_ns\":{},\"telemetry_overhead_permille\":{}}}",
                profile.engine, profile.wall_ns, tel_profile.wall_ns, overhead_permille
            ));
        }
    }
    let mut artifact =
        format!("{{\"schema_version\":{SCHEMA_VERSION},\"experiment\":\"E16\",\"profiles\":[");
    let _ = write!(artifact, "{}", json_entries.join(","));
    artifact.push_str("]}");
    rep.add_artifact("BENCH_engine.json", artifact);
    let mut tel_artifact =
        format!("{{\"schema_version\":{SCHEMA_VERSION},\"experiment\":\"E16\",\"profiles\":[");
    let _ = write!(tel_artifact, "{}", telemetry_entries.join(","));
    tel_artifact.push_str("]}");
    rep.add_artifact("BENCH_telemetry.json", tel_artifact);
    rep.note(
        "wall-clock columns are host-dependent; betweenness and CONGEST metrics are \
         asserted bit-identical across every engine and thread count before a row is \
         emitted"
            .to_string(),
    );
    rep.note(
        "step share = nodes stepped / (rounds x n); the serial/no-skip row is the \
         pre-active-set reference and is excluded from the BENCH_engine.json artifact"
            .to_string(),
    );
    rep.note(
        "BENCH_telemetry.json measures the same sweep with the always-on telemetry \
         layer attached: telemetry_overhead_permille = telemetry wall / plain wall x \
         1000 on the same host (1000 = parity, 1020 = 2% overhead); results are \
         asserted bit-identical before the ratio is recorded"
            .to_string(),
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_engine_sweep_covers_families_and_thread_counts() {
        let rep = run(true);
        // 3 families × (no-skip reference + 3 engine configs).
        assert_eq!(rep.rows.len(), 12);
        assert_eq!(rep.perf.len(), 9);
        let (name, artifact) = &rep.artifacts[0];
        assert_eq!(name, "BENCH_engine.json");
        assert!(artifact.starts_with("{\"schema_version\":1,"));
        assert!(artifact.contains("\"experiment\":\"E16\""));
        assert!(artifact.contains("\"engine\":\"serial\""));
        assert!(artifact.contains("\"engine\":\"parallel(2)\""));
        assert!(artifact.contains("\"engine\":\"parallel(4)\""));
        assert!(!artifact.contains("no-skip"));
        assert_eq!(artifact.matches("\"graph\":").count(), 9);
        let (tel_name, tel_artifact) = &rep.artifacts[1];
        assert_eq!(tel_name, "BENCH_telemetry.json");
        assert!(tel_artifact.starts_with("{\"schema_version\":1,"));
        assert_eq!(
            tel_artifact
                .matches("\"telemetry_overhead_permille\":")
                .count(),
            9
        );
        assert_eq!(tel_artifact.matches("\"graph\":").count(), 9);
        // Idle skipping leaves most (family, round) node slots unstepped.
        let stepped: Vec<&str> = rep
            .rows
            .iter()
            .filter(|r| r[1] == "serial")
            .map(|r| r[7].as_str())
            .collect();
        assert_eq!(stepped.len(), 3);
    }
}
