//! E3 — Theorem 3 (`O(N)` rounds): measured round counts across sizes and
//! families, with the fitted rounds-per-node slope. The slope is flat in
//! `N` (linear total) and essentially independent of `M` and `D`.

use crate::ExperimentReport;
use bc_core::{run_distributed_bc, DistBcConfig};
use bc_graph::{generators, Graph};

fn families(n: usize) -> Vec<(String, Graph)> {
    vec![
        (format!("path-{n}"), generators::path(n)),
        (format!("cycle-{n}"), generators::cycle(n)),
        (
            format!("er-{n}"),
            generators::erdos_renyi_connected(n, (8.0 / n as f64).min(0.5), 7),
        ),
        (format!("ba-{n}"), generators::barabasi_albert(n, 2, 7)),
        (format!("tree-{n}"), generators::random_tree(n, 7)),
    ]
}

/// Least-squares slope of `rounds` against `n` through the origin.
pub fn slope_through_origin(points: &[(f64, f64)]) -> f64 {
    let num: f64 = points.iter().map(|(x, y)| x * y).sum();
    let den: f64 = points.iter().map(|(x, _)| x * x).sum();
    num / den
}

/// Runs E3.
pub fn run(quick: bool) -> ExperimentReport {
    let sizes: &[usize] = if quick {
        &[16, 32, 64]
    } else {
        &[32, 64, 128, 256, 512]
    };
    let mut rep = ExperimentReport::new(
        "E3",
        "Theorem 3 — rounds vs N (fitted slope ⇒ O(N))",
        &[
            "graph",
            "n",
            "m",
            "D",
            "rounds",
            "rounds/n",
            "counting used",
            "agg spread",
        ],
    );
    let mut per_family: std::collections::BTreeMap<&'static str, Vec<(f64, f64)>> =
        Default::default();
    for &n in sizes {
        for (name, g) in families(n) {
            let out = run_distributed_bc(&g, DistBcConfig::default()).expect("runs");
            rep.push_perf(
                &name,
                out.rounds,
                out.metrics.total_messages,
                out.metrics.total_bits,
            );
            let fam: &'static str = match name.split('-').next().unwrap_or("") {
                "path" => "path",
                "cycle" => "cycle",
                "er" => "er",
                "ba" => "ba",
                _ => "tree",
            };
            per_family
                .entry(fam)
                .or_default()
                .push((n as f64, out.rounds as f64));
            rep.push_row(vec![
                name,
                n.to_string(),
                g.m().to_string(),
                out.diameter.to_string(),
                out.rounds.to_string(),
                format!("{:.2}", out.rounds as f64 / n as f64),
                out.counting_rounds_used.to_string(),
                out.ts_spread.to_string(),
            ]);
        }
    }
    for (fam, pts) in &per_family {
        let slope = slope_through_origin(pts);
        rep.note(format!(
            "{fam}: rounds ≈ {slope:.2}·N (R²-free fit through origin)"
        ));
        assert!(slope < 20.0, "{fam}: slope {slope} not O(N)-like");
    }
    rep.note(
        "shape check: rounds/n is flat across sizes and families — the paper's O(N) \
         upper bound with a schedule constant ≈ 9–13, independent of M and D"
            .to_string(),
    );
    rep
}

/// Runs the E3 companion table: per-phase round/message/bit breakdown of
/// the provisioned schedule, from the simulator's phase-windowed metrics.
///
/// The shape claims checked: phase B (pipelined counting) owns the round
/// budget, and the four windows tile `[0, rounds)` exactly.
pub fn run_phases(quick: bool) -> ExperimentReport {
    let sizes: &[usize] = if quick { &[32, 64] } else { &[64, 128, 256] };
    let mut rep = ExperimentReport::new(
        "E3b",
        "per-phase breakdown (tree / counting / reduce+bcast / aggregation)",
        &crate::report::PHASE_HEADERS,
    );
    for &n in sizes {
        for (name, g) in families(n) {
            let out = run_distributed_bc(&g, DistBcConfig::default()).expect("runs");
            let summed: u64 = out.phase_stats.iter().map(|p| p.rounds).sum();
            assert_eq!(
                summed, out.rounds,
                "{name}: phase windows must tile the run"
            );
            rep.push_phase_stats(&name, &out.phase_stats);
        }
    }
    rep.note(
        "phase B (pipelined counting) dominates the round count, as Theorem 3's \
         accounting predicts; phases A/C/D are O(D)+O(N) bookkeeping"
            .to_string(),
    );
    rep
}
