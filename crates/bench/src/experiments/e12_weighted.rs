//! E12 (extension) — weighted graphs via virtual-node subdivision, the
//! paper's Section X future-work sketch. For positive integer weights the
//! subdivision is exact; rounds scale with the subdivided size
//! `N' = N + Σ(w − 1)`.

use crate::ExperimentReport;
use bc_brandes::weighted::betweenness_weighted_f64;
use bc_core::{run_distributed_bc_weighted, DistBcConfig};
use bc_graph::weighted::random_weighted;

/// Runs E12.
pub fn run(quick: bool) -> ExperimentReport {
    let n = if quick { 16 } else { 32 };
    let wmaxes: &[u32] = if quick { &[2, 4] } else { &[2, 4, 8, 16] };
    let mut rep = ExperimentReport::new(
        "E12",
        "extension: weighted betweenness by virtual-node subdivision (Section X)",
        &[
            "n",
            "max weight",
            "simulated N'",
            "rounds",
            "max rel err vs Dijkstra-Brandes",
            "compliant",
        ],
    );
    for &wmax in wmaxes {
        let wg = random_weighted(n, 0.15, wmax, 7);
        let out = run_distributed_bc_weighted(&wg, DistBcConfig::default()).expect("runs");
        let oracle = betweenness_weighted_f64(&wg);
        let err = out
            .betweenness
            .iter()
            .zip(&oracle)
            .map(|(a, e)| (a - e).abs() / (1.0 + e))
            .fold(0.0f64, f64::max);
        rep.push_row(vec![
            n.to_string(),
            wmax.to_string(),
            out.simulated_n.to_string(),
            out.rounds.to_string(),
            format!("{err:.2e}"),
            out.metrics.congest_compliant().to_string(),
        ]);
        assert!(err < 0.05, "weighted reproduction error too large: {err}");
    }
    rep.note(
        "exact (up to float rounding) for integer weights — stronger than the paper's \
         sketched (1+ε)-approximation; cost is linear in the total edge weight, matching \
         the subdivision intuition the conclusion attributes to Nanongkai [16]"
            .to_string(),
    );
    rep
}
