//! E2 — end-to-end equivalence of Algorithms 2–3 with Algorithm 1
//! (Brandes): maximum relative deviation of the distributed result from
//! centralized Brandes across the generator suite, against the
//! Theorem 1 / Corollary 1 error budget.

use crate::ExperimentReport;
use bc_brandes::betweenness_f64;
use bc_core::{run_distributed_bc, DistBcConfig};
use bc_graph::{algo, generators, Graph};

/// Maximum relative deviation (guarded at 1 for near-zero truths).
pub fn max_rel_err(approx: &[f64], exact: &[f64]) -> f64 {
    approx
        .iter()
        .zip(exact)
        .map(|(a, e)| (a - e).abs() / (1.0 + e.abs()))
        .fold(0.0, f64::max)
}

fn suite(quick: bool) -> Vec<(String, Graph)> {
    let mut v: Vec<(String, Graph)> = vec![
        ("path-33".into(), generators::path(33)),
        ("cycle-32".into(), generators::cycle(32)),
        ("star-24".into(), generators::star(24)),
        ("grid-6x6".into(), generators::grid(6, 6)),
        ("tree-2^4".into(), generators::balanced_tree(2, 4)),
        ("hypercube-5".into(), generators::hypercube(5)),
        ("barbell-8+4".into(), generators::barbell(8, 4)),
        ("lollipop-8+6".into(), generators::lollipop(8, 6)),
        (
            "er-48".into(),
            generators::erdos_renyi_connected(48, 0.07, 1),
        ),
        ("ba-64".into(), generators::barabasi_albert(64, 2, 2)),
    ];
    if quick {
        v.truncate(4);
    } else {
        let ws = generators::watts_strogatz(60, 4, 0.2, 3);
        v.push(("ws-60".into(), algo::largest_component(&ws).0));
        v.push((
            "er-dense-40".into(),
            generators::erdos_renyi_connected(40, 0.3, 4),
        ));
    }
    v
}

/// Runs E2.
pub fn run(quick: bool) -> ExperimentReport {
    let mut rep = ExperimentReport::new(
        "E2",
        "distributed vs centralized Brandes across the generator suite",
        &[
            "graph",
            "n",
            "m",
            "D",
            "L",
            "max rel err",
            "err / 2^-L",
            "compliant",
        ],
    );
    let mut worst_ratio = 0.0f64;
    for (name, g) in suite(quick) {
        let out = run_distributed_bc(&g, DistBcConfig::default()).expect("suite graph runs");
        let exact = betweenness_f64(&g);
        let err = max_rel_err(&out.betweenness, &exact);
        let unit = (-(out.fp.mantissa_bits() as f64)).exp2();
        let ratio = err / unit;
        worst_ratio = worst_ratio.max(ratio);
        rep.push_row(vec![
            name,
            g.n().to_string(),
            g.m().to_string(),
            out.diameter.to_string(),
            out.fp.mantissa_bits().to_string(),
            format!("{err:.2e}"),
            format!("{ratio:.1}"),
            out.metrics.congest_compliant().to_string(),
        ]);
        assert!(
            out.metrics.congest_compliant(),
            "{}: CONGEST violation",
            g.n()
        );
        assert!(
            ratio < 256.0,
            "error exceeds the O(2^-L) budget with constant 256"
        );
    }
    rep.note(format!(
        "Theorem 1 / Corollary 1: relative error O(2^-L); measured error stays within \
         {worst_ratio:.1}·2^-L across the suite (a small constant, as predicted)"
    ));
    rep
}
