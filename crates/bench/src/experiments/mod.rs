//! One module per experiment; see `DESIGN.md` §4 for the index mapping
//! each to the paper artifact it regenerates.

pub mod e10_ablation;
pub mod e11_sampling;
pub mod e12_weighted;
pub mod e13_adaptive;
pub mod e14_apsp_pipeline;
pub mod e15_profile;
pub mod e16_engine;
pub mod e17_faults;
pub mod e18_scaling;
pub mod e19_wire;
pub mod e1_figure1;
pub mod e20_serve;
pub mod e21_sampled_scale;
pub mod e2_correctness;
pub mod e3_rounds;
pub mod e4_error_vs_l;
pub mod e5_compliance;
pub mod e6_diameter_gadget;
pub mod e7_bc_gadget;
pub mod e8_cut_flow;
pub mod e9_central_vs_dist;
