//! E15 — engine overhead and congestion scaling: wall-clock profiles of
//! all three engines (serial, parallel, α-synchronizer) across graph
//! families, split into node compute vs engine overhead, with per-phase
//! congestion (inbox depths) from the provisioned schedule.
//!
//! Unlike E1–E14, the table's wall-clock columns describe the *host*, not
//! the algorithm — they are the baseline later perf PRs diff against. The
//! machine-readable artifact (`BENCH_profile.json`, attached via
//! [`ExperimentReport::add_artifact`] and written by `repro`) carries the
//! full [`bc_congest::ProfileReport`] per (family, engine) pair.

use crate::ExperimentReport;
use bc_congest::asynchronous::{run_synchronized_profiled, AsyncConfig};
use bc_congest::{ProfileReport, Profiler, SCHEMA_VERSION};
use bc_core::{run_distributed_bc_profiled, AlgoOptions, DistBcConfig, DistBcNode};
use bc_graph::{generators, Graph};
use std::fmt::Write as _;

/// The shared graph families profiled by E15 and E16 (path / sparse
/// Erdős–Rényi / Barabási–Albert at size `n`).
pub(crate) fn families(n: usize) -> Vec<(String, Graph)> {
    vec![
        (format!("path-{n}"), generators::path(n)),
        (
            format!("er-{n}"),
            generators::erdos_renyi_connected(n, (8.0 / n as f64).min(0.5), 7),
        ),
        (format!("ba-{n}"), generators::barabasi_albert(n, 2, 7)),
    ]
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn push_profile_row(rep: &mut ExperimentReport, family: &str, profile: &ProfileReport) {
    let extra = if let Some(w) = &profile.workers {
        format!("util {:.0}% imb {:.2}x", 100.0 * w.utilization, w.imbalance)
    } else if let Some(s) = &profile.sync {
        format!("skew {} queue {}", s.max_pulse_skew, s.max_queue_depth)
    } else {
        "-".to_string()
    };
    rep.push_row(vec![
        family.to_string(),
        profile.engine.clone(),
        profile.rounds.to_string(),
        format!("{:.3}", ms(profile.wall_ns)),
        format!("{:.3}", ms(profile.compute_ns)),
        format!("{:.3}", ms(profile.overhead_ns)),
        format!("{:.1}%", 100.0 * profile.compute_fraction()),
        profile.max_inbox_depth.to_string(),
        extra,
    ]);
}

/// Runs E15: profiles every (family, engine) pair and attaches the
/// machine-readable `BENCH_profile.json` artifact.
pub fn run(quick: bool) -> ExperimentReport {
    let n = if quick { 24 } else { 64 };
    let threads = 4;
    let mut rep = ExperimentReport::new(
        "E15",
        "engine overhead + congestion profile (wall-clock; host-dependent baseline)",
        &[
            "graph",
            "engine",
            "rounds",
            "wall ms",
            "compute ms",
            "overhead ms",
            "compute %",
            "max inbox",
            "engine detail",
        ],
    );
    let mut json_entries: Vec<String> = Vec::new();
    for (family, g) in families(n) {
        let gn = g.n();
        // Serial engine (the reference recording, also the pulse budget
        // for the synchronizer below).
        let (serial_out, serial_profile) =
            run_distributed_bc_profiled(&g, DistBcConfig::default()).expect("serial runs");
        rep.push_perf(
            &family,
            serial_out.rounds,
            serial_out.metrics.total_messages,
            serial_out.metrics.total_bits,
        );
        push_profile_row(&mut rep, &family, &serial_profile);
        json_entries.push(format!(
            "{{\"graph\":\"{family}\",\"profile\":{}}}",
            serial_profile.to_json()
        ));

        // Parallel engine: same run, worker utilization/imbalance added.
        let (_, parallel_profile) = run_distributed_bc_profiled(
            &g,
            DistBcConfig {
                threads,
                ..DistBcConfig::default()
            },
        )
        .expect("parallel runs");
        push_profile_row(&mut rep, &family, &parallel_profile);
        json_entries.push(format!(
            "{{\"graph\":\"{family}\",\"profile\":{}}}",
            parallel_profile.to_json()
        ));

        // α-synchronizer: per-pulse compute plus skew/queue counters.
        let opts = AlgoOptions::for_graph_size(gn);
        let (_, _, profiler) = run_synchronized_profiled(
            &g,
            AsyncConfig::default(),
            serial_out.rounds + 1,
            |v, _| DistBcNode::new(gn, v, opts.clone()),
            Profiler::new(),
        );
        let sync_profile = profiler.report("alpha-sync", &[]);
        push_profile_row(&mut rep, &family, &sync_profile);
        json_entries.push(format!(
            "{{\"graph\":\"{family}\",\"profile\":{}}}",
            sync_profile.to_json()
        ));
    }
    let mut artifact =
        format!("{{\"schema_version\":{SCHEMA_VERSION},\"experiment\":\"E15\",\"profiles\":[");
    let _ = write!(artifact, "{}", json_entries.join(","));
    artifact.push_str("]}");
    rep.add_artifact("BENCH_profile.json", artifact);
    rep.note(
        "wall-clock columns are host-dependent (they profile the simulator, not the \
         algorithm); rounds/messages stay bit-identical with profiling on — the \
         observational-freeness tests assert this"
            .to_string(),
    );
    rep.note(format!(
        "parallel engine uses {threads} workers over contiguous node chunks; the \
         α-synchronizer pays its O(M) control messages per pulse in queue depth"
    ));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_profile_covers_three_families_and_engines() {
        let rep = run(true);
        // 3 families × 3 engines.
        assert_eq!(rep.rows.len(), 9);
        assert_eq!(rep.perf.len(), 3);
        let (name, artifact) = &rep.artifacts[0];
        assert_eq!(name, "BENCH_profile.json");
        assert!(artifact.starts_with("{\"schema_version\":1,"));
        assert!(artifact.contains("\"experiment\":\"E15\""));
        assert!(artifact.contains("\"engine\":\"serial\""));
        assert!(artifact.contains("\"engine\":\"parallel(4)\""));
        assert!(artifact.contains("\"engine\":\"alpha-sync\""));
        assert_eq!(artifact.matches("\"graph\":").count(), 9);
        // Per-phase congestion present for the provisioned engines.
        assert!(artifact.contains("\"name\":\"B:counting\""));
    }
}
