//! E8 — Theorems 5–6 made concrete: the measured bit flow of the real
//! distributed algorithm across the gadget's `(m+1)`-edge cut, next to the
//! `Ω(n log n)` disjointness bound and the `Ω(N / log N)` round bound.

use crate::ExperimentReport;
use bc_lowerbound::cutflow::measure_bc_gadget;
use bc_lowerbound::disjoint::{random_instance, universe_size};

/// Runs E8.
pub fn run(quick: bool) -> ExperimentReport {
    let ns: &[usize] = if quick {
        &[4, 8]
    } else {
        &[4, 6, 8, 12, 16, 24]
    };
    let mut rep = ExperimentReport::new(
        "E8",
        "Theorems 5–6 — bits across the gadget cut vs the n·log n bound",
        &[
            "instance n",
            "N",
            "cut edges",
            "cut bits (measured)",
            "n·log2 n (bound)",
            "rounds (measured)",
            "N/log2 N (bound)",
            "rounds/bound",
        ],
    );
    for &n in ns {
        let inst = random_instance(n, universe_size(n), true, 41 + n as u64);
        let (_, r) = measure_bc_gadget(&inst).expect("gadget runs");
        rep.push_row(vec![
            n.to_string(),
            r.n.to_string(),
            r.cut_edges.to_string(),
            r.cut_bits.to_string(),
            format!("{:.0}", r.disjointness_bits),
            r.rounds.to_string(),
            format!("{:.1}", r.round_lower_bound),
            format!("{:.1}", r.rounds as f64 / r.round_lower_bound),
        ]);
        assert!(r.cut_bits as f64 >= r.disjointness_bits);
        assert!(r.rounds as f64 >= r.round_lower_bound);
    }
    rep.note(
        "the real algorithm always moves ≥ n·log n bits across the (m+1)-edge cut — \
         consistent with the information bound any correct algorithm must obey; its \
         round count sits a constant factor above N/log N, i.e. the O(N) upper bound \
         and the Ω(D + N/log N) lower bound bracket it within O(log N) — \"nearly optimal\""
            .to_string(),
    );
    rep
}
