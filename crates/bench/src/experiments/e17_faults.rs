//! E17 — chaos sweep: the reliable transport over seeded fault plans.
//!
//! For each E15 graph family, a fault-free bare run fixes the baseline,
//! then reliable runs sweep drop ∈ {0, 5%, 10%, 20%} (with duplication at
//! half the drop rate and reordering delays mixed in). Every reliable run
//! must reproduce the baseline betweenness **bit for bit** — that assert
//! is the experiment; the table then quantifies what reliability costs in
//! rounds, retransmissions, and discarded duplicates.
//!
//! The artifact (`BENCH_faults.json`) reuses the E15/E16 `profiles` shape
//! with one extra per-record field, `overhead_permille` =
//! `1000 × reliable_rounds / baseline_rounds`. Unlike `wall_ns` this is a
//! pure function of the seeded plan, so `bench_guard --metric
//! overhead_permille` diffs it deterministically across hosts: a guard
//! failure means the transport itself got chattier, not that the runner
//! was slow.

use crate::ExperimentReport;
use bc_congest::{FaultPlan, SCHEMA_VERSION};
use bc_core::{run_distributed_bc, run_distributed_bc_profiled, DistBcConfig};
use std::fmt::Write as _;

use super::e15_profile::families;

/// Drop rates of the sweep, in permille (0 = reliable mode on a clean
/// network, measuring the pure pipeline/ack overhead).
const DROP_PERMILLE: [u64; 4] = [0, 50, 100, 200];

/// The sweep's fault plan at one drop level: duplication at half the drop
/// rate, reordering (delay ≤ 2 rounds) at the drop rate, seed fixed so the
/// artifact regenerates bit-for-bit.
fn plan(drop_pm: u64) -> Option<FaultPlan> {
    (drop_pm > 0).then(|| FaultPlan {
        drop: drop_pm as f64 / 1000.0,
        duplicate: drop_pm as f64 / 2000.0,
        delay: drop_pm as f64 / 1000.0,
        max_delay: 2,
        ..FaultPlan::seeded(17)
    })
}

/// Runs E17: bit-exactness under faults plus the reliability cost table,
/// with the `BENCH_faults.json` artifact for the CI chaos guard.
pub fn run(quick: bool) -> ExperimentReport {
    let n = if quick { 20 } else { 40 };
    let mut rep = ExperimentReport::new(
        "E17",
        "reliable transport under seeded faults (bit-exact; overhead vs fault-free run)",
        &[
            "graph",
            "drop",
            "base rounds",
            "reliable rounds",
            "overhead",
            "retransmits",
            "deduped",
            "faults injected",
        ],
    );
    let mut json_entries: Vec<String> = Vec::new();
    for (family, g) in families(n) {
        let baseline = run_distributed_bc(&g, DistBcConfig::default()).expect("fault-free run");
        for drop_pm in DROP_PERMILLE {
            let cfg = DistBcConfig {
                faults: plan(drop_pm),
                reliable: true,
                ..DistBcConfig::default()
            };
            let (out, profile) = run_distributed_bc_profiled(&g, cfg).expect("reliable run");
            assert_eq!(
                out.betweenness, baseline.betweenness,
                "{family} drop={drop_pm}‰: reliable run diverged from fault-free baseline"
            );
            let overhead_permille = 1000 * out.rounds / baseline.rounds.max(1);
            rep.push_row(vec![
                family.clone(),
                format!("{:.1}%", drop_pm as f64 / 10.0),
                baseline.rounds.to_string(),
                out.rounds.to_string(),
                format!("{:.2}x", overhead_permille as f64 / 1000.0),
                profile.messages_retransmitted.to_string(),
                profile.messages_deduped.to_string(),
                profile.faults_injected.to_string(),
            ]);
            rep.push_perf(
                format!("{family}/drop{drop_pm}pm"),
                out.rounds,
                out.metrics.total_messages,
                out.metrics.total_bits,
            );
            json_entries.push(format!(
                "{{\"graph\":\"{family}/drop{drop_pm}pm\",\"profile\":{},\
                 \"overhead_permille\":{overhead_permille}}}",
                profile.to_json()
            ));
        }
    }
    let mut artifact =
        format!("{{\"schema_version\":{SCHEMA_VERSION},\"experiment\":\"E17\",\"profiles\":[");
    let _ = write!(artifact, "{}", json_entries.join(","));
    artifact.push_str("]}");
    rep.add_artifact("BENCH_faults.json", artifact);
    rep.note(
        "every reliable row is asserted bit-identical to the fault-free baseline before \
         it is emitted — the table reports the cost of that guarantee, not an \
         approximation error"
            .to_string(),
    );
    rep.note(
        "overhead_permille in BENCH_faults.json is a deterministic function of the \
         seeded plan (rounds, not wall clock), so bench_guard --metric overhead_permille \
         compares it across hosts without runner noise"
            .to_string(),
    );
    rep.note(
        "each drop level also duplicates at half the drop rate and reorders (delay ≤ 2) \
         at the drop rate; the 0% row measures the transport's pure pipeline/ack \
         overhead — two extra rounds and zero retransmissions"
            .to_string(),
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_chaos_sweep_covers_families_and_drop_levels() {
        let rep = run(true);
        // 3 families × 4 drop levels; the bit-exactness asserts inside
        // run() are the real test.
        assert_eq!(rep.rows.len(), 12);
        assert_eq!(rep.perf.len(), 12);
        let (name, artifact) = &rep.artifacts[0];
        assert_eq!(name, "BENCH_faults.json");
        assert!(artifact.starts_with("{\"schema_version\":1,"));
        assert!(artifact.contains("\"experiment\":\"E17\""));
        assert_eq!(artifact.matches("\"overhead_permille\":").count(), 12);
        assert!(artifact.contains("\"engine\":\"serial+reliable\""));
        // Clean-network reliable runs never retransmit; lossy ones must.
        let drop0: Vec<&Vec<String>> = rep.rows.iter().filter(|r| r[1] == "0.0%").collect();
        assert!(drop0.iter().all(|r| r[5] == "0" && r[6] == "0"));
        let lossy: Vec<&Vec<String>> = rep.rows.iter().filter(|r| r[1] == "20.0%").collect();
        assert!(lossy.iter().all(|r| r[5] != "0"));
    }
}
