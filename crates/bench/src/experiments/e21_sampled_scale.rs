//! E21 (extension) — sampling at scale: the accuracy vs rounds/bits/bytes
//! frontier of sampled-source runs far past the exact-run comfort zone
//! (n ∈ {256, 1k, 4k, 10k} at k = 64 sources).
//!
//! Two claims are measured. First, the arena-backed struct-of-arrays node
//! state keyed by the dense [`bc_core::SourceIndex`] makes per-node memory
//! O(|S|), not O(N): `state_bytes_per_node` on a sampled run stays flat as
//! n grows, while a dense per-source layout (measured on an all-sources
//! run and extrapolated linearly, since its per-node state is one record
//! per source) grows with n. The CI `sampled-scale` job guards that metric
//! via `bench_guard --metric state_bytes_per_node` against the committed
//! `BENCH_sampled.json`. Second, the Ji–Yan finite-sample correction
//! (`--estimator jiyan`, arXiv:1608.04472) refines plain N/k extrapolation
//! at equal k: `err_permille_jiyan` ≤ `err_permille_scaled` on at least
//! one size, guarded via `--metric err_permille_jiyan`.
//!
//! Errors are deterministic (seeded sampling, seeded generator), so the
//! accuracy guard compares exactly across hosts; `state_bytes_per_node` is
//! a pure layout function and is likewise host-independent.

use crate::ExperimentReport;
use bc_brandes::betweenness_f64;
use bc_congest::SCHEMA_VERSION;
use bc_core::{run_distributed_bc, DistBcConfig, Estimator, SourceSelection};
use bc_graph::generators;
use std::fmt::Write as _;

/// Sources drawn at every size — the point of the sweep is constant k
/// under growing n.
const K: usize = 64;
const SEED: u64 = 11;

/// Mean relative error over the exact top-10 nodes, in permille (the
/// integer form `bench_guard` compares).
fn err_permille(estimate: &[f64], exact: &[f64]) -> u64 {
    let mut order: Vec<usize> = (0..exact.len()).collect();
    order.sort_by(|&a, &b| exact[b].total_cmp(&exact[a]));
    let top = &order[..10.min(order.len())];
    let err = top
        .iter()
        .map(|&v| (estimate[v] - exact[v]).abs() / exact[v].max(1.0))
        .sum::<f64>()
        / top.len() as f64;
    (err * 1000.0).round() as u64
}

fn sampled_config(estimator: Estimator) -> DistBcConfig {
    DistBcConfig {
        sources: SourceSelection::Sample { k: K, seed: SEED },
        estimator,
        ..DistBcConfig::default()
    }
}

/// Runs E21: the sampled-scale sweep with the `BENCH_sampled.json`
/// artifact for the CI `sampled-scale` guard.
pub fn run(quick: bool) -> ExperimentReport {
    let sizes: &[usize] = if quick {
        &[256, 1024]
    } else {
        &[256, 1024, 4096, 10_000]
    };
    let mut rep = ExperimentReport::new(
        "E21",
        "sampling at scale — accuracy vs rounds/bits/bytes at k = 64 sources",
        &[
            "graph",
            "rounds",
            "kbit",
            "state B/node",
            "dense B/node (extrap)",
            "err scaled",
            "err jiyan",
        ],
    );

    // Dense reference: an all-sources run keeps one record per source per
    // node, so its per-node footprint is linear in n and can be measured
    // at a size where the exact run is cheap, then extrapolated.
    let dense_n = if quick { 256 } else { 1024 };
    let dense = run_distributed_bc(
        &generators::barabasi_albert(dense_n, 2, 7),
        DistBcConfig::default(),
    )
    .expect("dense reference runs");
    let dense_per_node = dense.state_bytes_total / dense_n as u64;

    let mut json_entries: Vec<String> = Vec::new();
    let mut jiyan_won = false;
    let mut reductions: Vec<(usize, u64)> = Vec::new();
    for &n in sizes {
        let g = generators::barabasi_albert(n, 2, 7);
        let exact = betweenness_f64(&g);
        let scaled = run_distributed_bc(&g, sampled_config(Estimator::Scaled)).expect("runs");
        assert!(scaled.metrics.congest_compliant());
        assert_eq!(scaled.sample_size, K.min(n));
        if n == sizes[0] {
            // The pooled engine must reproduce the sampled run bit for
            // bit, SoA layout and all; one size suffices (E16/E18 sweep
            // engines exhaustively on exact runs).
            let pooled = run_distributed_bc(
                &g,
                DistBcConfig {
                    threads: 2,
                    ..sampled_config(Estimator::Scaled)
                },
            )
            .expect("runs");
            assert_eq!(pooled.betweenness, scaled.betweenness);
            assert_eq!(pooled.metrics, scaled.metrics);
        }
        let jiyan = run_distributed_bc(&g, sampled_config(Estimator::JiYan)).expect("runs");
        assert_eq!(
            jiyan.rounds, scaled.rounds,
            "the estimator reshapes the fold, not the protocol"
        );
        let err_scaled = err_permille(&scaled.betweenness, &exact);
        let err_jiyan = err_permille(&jiyan.betweenness, &exact);
        jiyan_won |= err_jiyan < err_scaled;
        let state_per_node = scaled.state_bytes_total / n as u64;
        let dense_extrapolated = dense_per_node * (n as u64) / (dense_n as u64);
        reductions.push((n, dense_extrapolated / state_per_node.max(1)));
        let family = format!("ba-{n}-k{K}");
        rep.push_row(vec![
            family.clone(),
            scaled.rounds.to_string(),
            (scaled.metrics.total_bits / 1000).to_string(),
            state_per_node.to_string(),
            dense_extrapolated.to_string(),
            format!("{:.3}", err_scaled as f64 / 1000.0),
            format!("{:.3}", err_jiyan as f64 / 1000.0),
        ]);
        json_entries.push(format!(
            "{{\"graph\":\"{family}\",\"engine\":\"serial\",\"rounds\":{},\"bits\":{},\
             \"state_bytes_per_node\":{state_per_node},\
             \"dense_state_bytes_per_node\":{dense_extrapolated},\
             \"err_permille_scaled\":{err_scaled},\"err_permille_jiyan\":{err_jiyan}}}",
            scaled.rounds, scaled.metrics.total_bits
        ));
    }
    assert!(
        jiyan_won,
        "the Ji–Yan correction must beat plain scaling on at least one size"
    );
    let (top_n, top_reduction) = *reductions.last().expect("at least one size");
    assert!(
        top_reduction >= if quick { 4 } else { 10 },
        "SoA state must shrink vs the dense layout at n = {top_n}: only {top_reduction}x"
    );

    let mut artifact = format!(
        "{{\"schema_version\":{SCHEMA_VERSION},\"experiment\":\"E21\",\
         \"k\":{K},\"seed\":{SEED},\"profiles\":["
    );
    let _ = write!(artifact, "{}", json_entries.join(","));
    artifact.push_str("]}");
    rep.add_artifact("BENCH_sampled.json", artifact);
    rep.note(format!(
        "state_bytes_per_node holds ~flat while the dense extrapolation grows linearly: \
         {}x smaller at n = {top_n} (dense measured on an all-sources run at n = {dense_n}, \
         scaled by n/{dense_n}); CI guards the metric against BENCH_sampled.json",
        top_reduction
    ));
    rep.note(
        "err columns are mean relative error over the exact top-10 (permille in the \
         artifact, deterministic under the fixed sample seed); jiyan applies the \
         finite-sample correction δ_in/2 + (δ − δ_in)(1 + (n−k−1)/2k) instead of \
         plain n/k scaling and must win on ≥ 1 size"
            .to_string(),
    );
    rep.note(
        "rounds stay O(n) (the DFS token still walks every node) but bits scale with k, \
         and the O(|S|) node state is what lets n = 10000 run on one core — the n ≈ 256 \
         wall of the dense layout was memory, not time"
            .to_string(),
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sampled_scale_sweep() {
        let rep = run(true);
        assert_eq!(rep.rows.len(), 2);
        let (name, artifact) = &rep.artifacts[0];
        assert_eq!(name, "BENCH_sampled.json");
        assert!(artifact.starts_with("{\"schema_version\":1,"));
        assert!(artifact.contains("\"experiment\":\"E21\""));
        assert!(artifact.contains("\"graph\":\"ba-256-k64\""));
        assert!(artifact.contains("\"graph\":\"ba-1024-k64\""));
        assert!(artifact.contains("\"state_bytes_per_node\":"));
        assert!(artifact.contains("\"err_permille_scaled\":"));
        assert!(artifact.contains("\"err_permille_jiyan\":"));
    }
}
