//! E9 — the paper's framing (Sections I–II): centralized Brandes costs
//! `Θ(NM)` sequential operations while the distributed algorithm costs
//! `Θ(N)` rounds regardless of density. This experiment measures both on
//! a density sweep: the round count stays flat as `M` grows, while the
//! centralized operation count grows linearly in `M` — the crossover the
//! paper's motivation rests on.

use crate::ExperimentReport;
use bc_core::{run_distributed_bc, DistBcConfig};
use bc_graph::algo::bfs;
use bc_graph::{generators, Graph};

/// Exact sequential operation count of Brandes' Algorithm 1: every source
/// scans every adjacency twice (BFS + accumulation), `N·(4M + c·N)` edge
/// and node touches. Counted, not modeled: we re-run the traversal and
/// tally.
pub fn brandes_op_count(g: &Graph) -> u64 {
    let mut ops: u64 = 0;
    for s in g.nodes() {
        let dag = bfs(g, s);
        // BFS touches every directed edge once.
        ops += 2 * g.m() as u64;
        // Accumulation touches each predecessor link once plus a node pop.
        ops += dag.preds.iter().map(|p| p.len() as u64).sum::<u64>();
        ops += g.n() as u64;
    }
    ops
}

/// Runs E9.
pub fn run(quick: bool) -> ExperimentReport {
    let n = if quick { 48 } else { 96 };
    let degrees: &[f64] = if quick {
        &[4.0, 12.0]
    } else {
        &[4.0, 8.0, 16.0, 32.0]
    };
    let mut rep = ExperimentReport::new(
        "E9",
        "centralized Θ(NM) operations vs distributed Θ(N) rounds as density grows",
        &[
            "n",
            "avg degree",
            "m",
            "Brandes ops",
            "ops / NM",
            "dist rounds",
            "rounds / N",
        ],
    );
    let mut rounds_seen = Vec::new();
    for &deg in degrees {
        let p = (deg / n as f64).min(0.9);
        let g = generators::erdos_renyi_connected(n, p, 53);
        let ops = brandes_op_count(&g);
        let out = run_distributed_bc(&g, DistBcConfig::default()).expect("runs");
        rounds_seen.push(out.rounds);
        rep.push_row(vec![
            n.to_string(),
            format!("{:.1}", 2.0 * g.m() as f64 / n as f64),
            g.m().to_string(),
            ops.to_string(),
            format!("{:.2}", ops as f64 / (n as f64 * g.m() as f64)),
            out.rounds.to_string(),
            format!("{:.1}", out.rounds as f64 / n as f64),
        ]);
    }
    let spread = *rounds_seen.iter().max().expect("nonempty") as f64
        / *rounds_seen.iter().min().expect("nonempty") as f64;
    assert!(
        spread < 1.25,
        "distributed rounds must be density-independent (spread {spread:.2})"
    );
    rep.note(format!(
        "distributed rounds vary by only {spread:.2}× across an 8× density range, while \
         centralized work scales with M — \"who wins\" in round/step terms shifts toward \
         the distributed algorithm as the graph densifies, exactly the paper's motivation"
    ));
    rep
}
