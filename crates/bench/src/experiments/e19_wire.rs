//! E19 — socket-engine overhead: wall clock of the process-per-shard
//! wire runtime (`distbc serve-shard` + leader, here as threads over
//! real Unix-domain sockets) against the in-process serial reliable
//! engine on the same graphs, at 2 and 4 shards, plus one run through
//! the lossy proxy to show the reliable transport paying for real loss.
//!
//! Where E18 asks "when does in-process parallelism pay?", E19 asks
//! "what does crossing a real socket cost?" — the answer bounds the
//! deployment overhead of the multi-process mode. Every clean-link row
//! is asserted bit-identical to the serial oracle (betweenness *and*
//! CONGEST metrics) before it is emitted; the lossy row asserts result
//! identity only, since retransmits legitimately inflate its metrics.

use crate::ExperimentReport;
use bc_congest::wire::LossyProxy;
use bc_congest::{FaultPlan, Partition, SCHEMA_VERSION};
use bc_core::wire::run_leader;
use bc_core::{run_distributed_bc_profiled, DistBcConfig, DistBcResult};
use bc_graph::{generators, Graph};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

static SOCKET_SEQ: AtomicUsize = AtomicUsize::new(0);

/// Fresh `unix:` socket addresses, unique across runs and processes.
fn socket_addrs(k: usize) -> Vec<String> {
    let pid = std::process::id();
    (0..k)
        .map(|_| {
            let seq = SOCKET_SEQ.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir().join(format!("bcw-e19-{pid}-{seq}.sock"));
            format!("unix:{}", path.display())
        })
        .collect()
}

/// Runs `g` across `k` shard threads over real sockets, optionally
/// through per-shard lossy proxies, returning the leader's result and
/// profile.
fn run_wire(
    g: &Graph,
    k: usize,
    plan: Option<&FaultPlan>,
) -> (DistBcResult, bc_congest::ProfileReport) {
    let shard_addrs = socket_addrs(k);
    let shards: Vec<_> = shard_addrs
        .iter()
        .map(|a| {
            let a = a.clone();
            thread::spawn(move || bc_core::wire::serve_shard(&a))
        })
        .collect();
    let mut proxies = Vec::new();
    let leader_addrs = match plan {
        None => shard_addrs,
        Some(plan) => {
            let graph = Arc::new(g.clone());
            let map = Arc::new(Partition::Contiguous.shard_map(g, k));
            let fronts = socket_addrs(k);
            let mut addrs = Vec::with_capacity(k);
            for (i, front) in fronts.iter().enumerate() {
                let p = LossyProxy::start(
                    front,
                    shard_addrs[i].clone(),
                    i,
                    graph.clone(),
                    map.clone(),
                    plan.clone(),
                )
                .expect("proxy starts");
                addrs.push(p.addr().to_string());
                proxies.push(p);
            }
            addrs
        }
    };
    let (out, profile) =
        run_leader(g, &DistBcConfig::default(), &leader_addrs, true).expect("wire run succeeds");
    for h in shards {
        h.join()
            .expect("shard thread not poisoned")
            .expect("shard exits cleanly");
    }
    (out, profile.expect("profiling was requested"))
}

/// Runs E19: the socket-engine overhead sweep with its
/// `BENCH_wire.json` artifact.
pub fn run(quick: bool) -> ExperimentReport {
    let sizes: &[usize] = if quick { &[24] } else { &[24, 48] };
    let shard_counts: &[usize] = if quick { &[2] } else { &[2, 4] };
    let mut rep = ExperimentReport::new(
        "E19",
        "socket-engine overhead (process-per-shard wire runtime vs serial, bit-identical)",
        &[
            "graph",
            "engine",
            "rounds",
            "wall ms",
            "serial ms",
            "ratio",
            "retransmits",
            "cross msgs",
        ],
    );
    let mut json_entries: Vec<String> = Vec::new();
    for &n in sizes {
        let family = format!("er-{n}");
        let g = generators::erdos_renyi_connected(n, (8.0 / n as f64).min(0.5), 7);
        let serial_cfg = DistBcConfig {
            reliable: true,
            threads: 0,
            ..DistBcConfig::default()
        };
        let (oracle, serial_profile) =
            run_distributed_bc_profiled(&g, serial_cfg).expect("serial oracle");
        let serial_wall = serial_profile.wall_ns;
        let mut emit = |engine: &str,
                        rounds: u64,
                        wall_ns: u64,
                        retransmits: u64,
                        cross: u64,
                        json: &mut Vec<String>| {
            let ratio_permille = wall_ns * 1000 / serial_wall.max(1);
            rep.push_row(vec![
                family.clone(),
                engine.to_string(),
                rounds.to_string(),
                format!("{:.3}", ms(wall_ns)),
                format!("{:.3}", ms(serial_wall)),
                format!("{:.2}x", ratio_permille as f64 / 1000.0),
                retransmits.to_string(),
                cross.to_string(),
            ]);
            json.push(format!(
                "{{\"graph\":\"{family}\",\"engine\":\"{engine}\",\"wall_ns\":{wall_ns},\
                 \"serial_wall_ns\":{serial_wall},\"ratio_permille\":{ratio_permille},\
                 \"retransmits\":{retransmits}}}"
            ));
        };
        emit(
            &serial_profile.engine,
            serial_profile.rounds,
            serial_wall,
            serial_profile.messages_retransmitted,
            serial_profile.cross_shard_messages,
            &mut json_entries,
        );
        for &k in shard_counts {
            let (out, profile) = run_wire(&g, k, None);
            assert_eq!(
                out.betweenness, oracle.betweenness,
                "{family}: wire({k}) diverged from serial betweenness"
            );
            assert_eq!(
                out.metrics, oracle.metrics,
                "{family}: wire({k}) diverged from serial metrics"
            );
            emit(
                &profile.engine,
                profile.rounds,
                profile.wall_ns,
                profile.messages_retransmitted,
                profile.cross_shard_messages,
                &mut json_entries,
            );
        }
        // One run through the lossy proxy at each size: drops, dupes, and
        // reordering within the transport's envelope, same exact answer.
        let plan = FaultPlan {
            drop: 0.15,
            duplicate: 0.10,
            delay: 0.10,
            max_delay: 2,
            ..FaultPlan::seeded(7)
        };
        let (out, profile) = run_wire(&g, 2, Some(&plan));
        assert_eq!(
            out.betweenness, oracle.betweenness,
            "{family}: lossy wire(2) diverged from serial betweenness"
        );
        let engine = format!("{}+proxy", profile.engine);
        emit(
            &engine,
            profile.rounds,
            profile.wall_ns,
            profile.messages_retransmitted,
            profile.cross_shard_messages,
            &mut json_entries,
        );
    }
    let mut artifact =
        format!("{{\"schema_version\":{SCHEMA_VERSION},\"experiment\":\"E19\",\"profiles\":[");
    let _ = write!(artifact, "{}", json_entries.join(","));
    artifact.push_str("]}");
    rep.add_artifact("BENCH_wire.json", artifact);
    rep.note(
        "every clean-link wire row is asserted bit-identical to the serial \
         reliable oracle (betweenness and CONGEST metrics) before it is \
         emitted; the +proxy row asserts result identity only, since \
         retransmits legitimately inflate its frame metrics"
            .to_string(),
    );
    rep.note(
        "shards here are threads of the bench process, but every byte \
         between leader and shards crosses a real Unix-domain socket \
         through the same serve_shard entry point as `distbc serve-shard`; \
         the ratio therefore prices framing + syscalls + the reliable \
         transport, not process spawn"
            .to_string(),
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_wire_sweep_is_bit_identical_and_reports_loss() {
        let rep = run(true);
        // 1 size × (serial + wire(2) + wire(2)+proxy).
        assert_eq!(rep.rows.len(), 3);
        assert_eq!(rep.rows[0][1], "serial+reliable");
        assert!(rep.rows[1][1].starts_with("wire(2)"));
        assert!(rep.rows[2][1].ends_with("+proxy"));
        // Serial is self-normalized; the wire rows carry real ratios.
        assert_eq!(rep.rows[0][5], "1.00x");
        let (name, artifact) = &rep.artifacts[0];
        assert_eq!(name, "BENCH_wire.json");
        assert!(artifact.starts_with("{\"schema_version\":1,"));
        assert!(artifact.contains("\"experiment\":\"E19\""));
        assert!(artifact.contains("\"retransmits\":"));
        // The lossy proxy must actually have cost something.
        let proxied: u64 = rep.rows[2][6].parse().expect("retransmit count");
        assert!(proxied > 0, "lossy proxy produced no retransmits");
    }
}
