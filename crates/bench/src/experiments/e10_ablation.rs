//! E10 — ablations of the paper's design choices:
//!
//! * **(a) scheduling** — the pipelined DFS schedule (Section VII) vs a
//!   sequential one-BFS-at-a-time strawman: `Θ(N)` vs `Θ(N²)` rounds.
//! * **(b) rounding** — the paper's ceiling rounding (one-sided `σ̂ ≥ σ`)
//!   vs round-to-nearest: same `O(2^-L)` error shape; ceil buys the
//!   one-sided estimate Lemma 1's analysis needs.
//! * **(c) encoding** — shipping exact `σ` (bignum) would need `Θ(N)` bits
//!   on some graphs (the "Large Value Challenge" of Section V), while the
//!   Section VI float needs `L + 16 = Θ(log N)` bits.

use crate::ExperimentReport;
use bc_brandes::{betweenness_ceilfloat, betweenness_exact};
use bc_core::{run_distributed_bc, DistBcConfig, Scheduling};
use bc_graph::algo::{bfs, sigma_big};
use bc_graph::{generators, Graph, NodeId};
use bc_numeric::{FpParams, Rounding};

/// E10a — pipelined vs sequential counting schedule.
pub fn run_scheduling(quick: bool) -> ExperimentReport {
    let sizes: &[usize] = if quick { &[16, 32] } else { &[16, 32, 64, 128] };
    let mut rep = ExperimentReport::new(
        "E10a",
        "ablation: pipelined DFS schedule vs sequential BFS (rounds)",
        &[
            "graph",
            "n",
            "pipelined rounds",
            "sequential rounds",
            "speedup",
        ],
    );
    for &n in sizes {
        for (name, g) in [
            (format!("path-{n}"), generators::path(n)),
            (
                format!("er-{n}"),
                generators::erdos_renyi_connected(n, (6.0 / n as f64).min(0.4), 3),
            ),
        ] {
            let pip = run_distributed_bc(&g, DistBcConfig::default()).expect("runs");
            let seq = run_distributed_bc(
                &g,
                DistBcConfig {
                    scheduling: Scheduling::Sequential,
                    ..DistBcConfig::default()
                },
            )
            .expect("runs");
            rep.push_row(vec![
                name,
                n.to_string(),
                pip.rounds.to_string(),
                seq.rounds.to_string(),
                format!("{:.1}x", seq.rounds as f64 / pip.rounds as f64),
            ]);
            assert!(seq.rounds > pip.rounds);
        }
    }
    rep.note(
        "the speedup grows linearly with N (Θ(N²) → Θ(N)): this is what Algorithm 2's \
         pipelining buys, and why the paper's result is the first linear-time algorithm"
            .to_string(),
    );
    rep
}

/// E10b — ceiling vs nearest rounding.
pub fn run_rounding(quick: bool) -> ExperimentReport {
    let g = if quick {
        generators::grid(4, 4)
    } else {
        generators::grid(6, 6)
    };
    let exact: Vec<f64> = betweenness_exact(&g).iter().map(|v| v.to_f64()).collect();
    let ls: &[u32] = if quick { &[6, 10] } else { &[6, 8, 10, 12, 16] };
    let mut rep = ExperimentReport::new(
        "E10b",
        "ablation: ceiling (paper) vs nearest rounding — error and sidedness",
        &[
            "L",
            "ceil max err",
            "nearest max err",
            "ceil one-sided σ̂ ≥ σ",
        ],
    );
    for &l in ls {
        let mut errs = [0.0f64; 2];
        for (k, rounding) in [Rounding::Ceil, Rounding::Nearest].into_iter().enumerate() {
            let approx = betweenness_ceilfloat(&g, FpParams::new(l, rounding));
            errs[k] = approx
                .iter()
                .zip(&exact)
                .map(|(a, e)| (a - e).abs() / (1.0 + e))
                .fold(0.0, f64::max);
        }
        // One-sidedness of σ̂ under ceil: σ̂ ≥ σ exactly (Lemma 1).
        let params = FpParams::new(l, Rounding::Ceil);
        let mut one_sided = true;
        for s in g.nodes() {
            let dag = bfs(&g, s);
            let sig = sigma_big(&dag);
            let mut hat = vec![bc_numeric::CeilFloat::zero(params); g.n()];
            hat[s as usize] = bc_numeric::CeilFloat::one(params);
            for &v in &dag.order {
                if v == s {
                    continue;
                }
                let mut acc = bc_numeric::CeilFloat::zero(params);
                for &w in &dag.preds[v as usize] {
                    acc += hat[w as usize];
                }
                hat[v as usize] = acc;
                one_sided &= acc.to_f64() >= sig[v as usize].to_f64() * (1.0 - 1e-12);
            }
        }
        rep.push_row(vec![
            l.to_string(),
            format!("{:.2e}", errs[0]),
            format!("{:.2e}", errs[1]),
            one_sided.to_string(),
        ]);
        assert!(one_sided, "ceil must upper-bound σ");
    }
    rep.note(
        "both modes shrink as 2^-L; nearest is a small constant better, but only ceil \
         guarantees σ̂ ≥ σ — the one-sided estimates Lemma 1 / Eq. 17–19 build on"
            .to_string(),
    );
    rep
}

/// A chain of `k` diamonds: `σ_{0,3k} = 2^k` — the paper's exponential
/// path-count scenario in minimal form.
pub fn diamond_chain(k: usize) -> Graph {
    let mut edges = Vec::with_capacity(4 * k);
    for i in 0..k as NodeId {
        let a = 3 * i;
        edges.push((a, a + 1));
        edges.push((a, a + 2));
        edges.push((a + 1, a + 3));
        edges.push((a + 2, a + 3));
    }
    Graph::from_edges(3 * k + 1, edges).expect("diamond chain valid")
}

/// E10c — exact-σ encoding vs the Section VI float.
pub fn run_encoding(quick: bool) -> ExperimentReport {
    let ks: &[usize] = if quick {
        &[8, 16]
    } else {
        &[8, 16, 32, 64, 128, 256, 512]
    };
    let mut rep = ExperimentReport::new(
        "E10c",
        "ablation: bits to ship σ exactly vs the Section VI float (the Large Value Challenge)",
        &[
            "graph",
            "N",
            "max σ",
            "exact σ bits",
            "float bits (L+16)",
            "budget Θ(log N)",
        ],
    );
    for &k in ks {
        let g = diamond_chain(k);
        let n = g.n();
        let dag = bfs(&g, 0);
        let sig = sigma_big(&dag);
        let max_bits = sig.iter().map(|s| s.bit_len()).max().expect("nonempty");
        let max_sigma = sig
            .iter()
            .max()
            .map(|s| {
                if s.bit_len() <= 60 {
                    s.to_decimal()
                } else {
                    format!("2^{}", s.bit_len() - 1)
                }
            })
            .expect("nonempty");
        let fp = FpParams::for_graph_size(n);
        let budget = bc_congest::Budget::Auto.resolve(n).expect("budget");
        rep.push_row(vec![
            format!("diamond-{k}"),
            n.to_string(),
            max_sigma,
            max_bits.to_string(),
            fp.encoded_bits().to_string(),
            budget.to_string(),
        ]);
        // The point of Section VI: exact σ grows linearly in bits (2^k
        // paths) and eventually exceeds any Θ(log N) budget, while the
        // float never does. With the Auto budget 8⌈log₂N⌉+64 the crossover
        // is at k ≈ 220.
        if k >= 256 {
            assert!(max_bits > budget, "k={k}: exact σ must overflow the budget");
        }
        assert!((fp.encoded_bits() as usize) <= budget);
    }
    rep.note(
        "σ grows as 2^k = 2^Ω(N) (paper: up to (N/D)^D), so exact transmission is \
         impossible under CONGEST; the 2L-bit float (Section VI) stays logarithmic with \
         only O(2^-L) relative error — resolving the Large Value Challenge"
            .to_string(),
    );
    rep
}
