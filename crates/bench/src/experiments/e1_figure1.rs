//! E1 — Figure 1: the worked 5-node example. Regenerates the per-BFS-tree
//! aggregation sending times `T_s(u) = T_s + D − d(s,u)` with the paper's
//! wave start times `T = (0, 2, 4, 6, 8)`, checks collision-freeness
//! (Lemma 4) and the worked values `δ_{v1·}(v2) = 3`, `C_B(v2) = 7/2`.

use crate::ExperimentReport;
use bc_brandes::{betweenness_exact, dependencies_from};
use bc_core::{run_distributed_bc, DistBcConfig};
use bc_graph::{algo, generators};
use std::collections::HashMap;

/// The paper's wave start times for the Figure 1 DFS order `v1..v5`:
/// `T_next = T_prev + d(prev, next) + 1`.
pub fn paper_wave_times() -> Vec<u64> {
    let g = generators::paper_figure1();
    let dist = algo::apsp(&g);
    let mut ts = vec![0u64; 5];
    for v in 1..5 {
        ts[v] = ts[v - 1] + dist[v - 1][v] as u64 + 1;
    }
    ts
}

/// Runs E1.
#[allow(clippy::needless_range_loop)] // indices mirror the paper's v1..v5 table
pub fn run() -> ExperimentReport {
    let g = generators::paper_figure1();
    let d = algo::diameter(&g) as u64;
    let dist = algo::apsp(&g);
    let ts = paper_wave_times();

    let mut rep = ExperimentReport::new(
        "E1",
        "Figure 1 — aggregation sending times on the worked example",
        &[
            "tree", "T_s", "T_s(v1)", "T_s(v2)", "T_s(v3)", "T_s(v4)", "T_s(v5)",
        ],
    );
    let mut sends: HashMap<(usize, u64), u32> = HashMap::new();
    for s in 0..5 {
        let mut row = vec![format!("BFS(v{})", s + 1), ts[s].to_string()];
        for u in 0..5 {
            if u == s {
                row.push("-".into());
            } else {
                let t = ts[s] + d - dist[s][u] as u64;
                *sends.entry((u, t)).or_default() += 1;
                row.push(t.to_string());
            }
        }
        rep.push_row(row);
    }
    let collisions = sends.values().filter(|&&c| c > 1).count();
    rep.note(format!(
        "paper values reproduced: T=(0,2,4,6,8), D=3; e.g. T_v1(v4)=0, T_v2(v4)=3, \
         T_v3(v4)=6, T_v5(v4)=10; Lemma 4 collisions: {collisions} (must be 0)"
    ));
    assert_eq!(collisions, 0, "Lemma 4 violated on Figure 1");

    let dep = dependencies_from(&g, 0);
    let exact = betweenness_exact(&g);
    let out = run_distributed_bc(&g, DistBcConfig::default()).expect("figure 1 runs");
    rep.push_perf(
        "figure1",
        out.rounds,
        out.metrics.total_messages,
        out.metrics.total_bits,
    );
    rep.note(format!(
        "worked values: δ_v1·(v2) = {} (paper 3); ψ_v1(v3) = ψ_v1(v5) = {} (paper 1/2); \
         exact C_B(v2) = {} (paper 7/2); distributed C_B(v2) = {} in {} rounds, compliant = {}",
        dep[1],
        dep[2],
        exact[1],
        out.betweenness[1],
        out.rounds,
        out.metrics.congest_compliant()
    ));
    assert_eq!(dep[1], 3.0);
    assert!((out.betweenness[1] - 3.5).abs() < 1e-9);
    rep
}
