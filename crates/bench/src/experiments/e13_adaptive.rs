//! E13 (extension) — adaptive phase barriers: replacing the worst-case
//! Θ(N) phase windows (which every node derives from N alone) with
//! event-driven transitions — a subtree-done convergecast ends the tree
//! build, the DFS token's return plus a 2·depth drain bound ends counting,
//! and explicit StartReduce / AggStart floods carry the barrier rounds.
//! Rounds become diameter-sensitive; correctness and CONGEST compliance
//! are unchanged.

use crate::ExperimentReport;
use bc_brandes::betweenness_f64;
use bc_core::{run_distributed_bc, DistBcConfig, Scheduling};
use bc_graph::{algo, generators, Graph};

/// Runs E13.
pub fn run(quick: bool) -> ExperimentReport {
    let n = if quick { 48 } else { 128 };
    let graphs: Vec<(String, Graph)> = vec![
        (
            format!("ba-{n} (low D)"),
            generators::barabasi_albert(n, 3, 2),
        ),
        (
            format!("er-{n} (low D)"),
            generators::erdos_renyi_connected(n, (8.0 / n as f64).min(0.5), 4),
        ),
        ("grid (mid D)".to_string(), generators::grid(n / 8, 8)),
        (format!("path-{n} (D=N-1)"), generators::path(n)),
    ];
    let mut rep = ExperimentReport::new(
        "E13",
        "extension: adaptive (event-driven) phase barriers vs provisioned Θ(N) windows",
        &[
            "graph",
            "D",
            "provisioned rounds",
            "adaptive rounds",
            "saving",
            "max |Δ BC|",
            "compliant",
        ],
    );
    for (name, g) in graphs {
        let det = run_distributed_bc(&g, DistBcConfig::default()).expect("runs");
        let ada = run_distributed_bc(
            &g,
            DistBcConfig {
                scheduling: Scheduling::Adaptive,
                ..DistBcConfig::default()
            },
        )
        .expect("runs");
        rep.push_perf(
            format!("{name} [provisioned]"),
            det.rounds,
            det.metrics.total_messages,
            det.metrics.total_bits,
        );
        rep.push_perf(
            format!("{name} [adaptive]"),
            ada.rounds,
            ada.metrics.total_messages,
            ada.metrics.total_bits,
        );
        let exact = betweenness_f64(&g);
        let err = ada
            .betweenness
            .iter()
            .zip(&exact)
            .map(|(a, e)| (a - e).abs() / (1.0 + e))
            .fold(0.0f64, f64::max);
        assert!(err < 1e-2, "{name}: adaptive diverged");
        assert!(ada.metrics.congest_compliant(), "{name}");
        rep.push_row(vec![
            name,
            algo::diameter(&g).to_string(),
            det.rounds.to_string(),
            ada.rounds.to_string(),
            format!(
                "{:+.0}%",
                100.0 * (1.0 - ada.rounds as f64 / det.rounds as f64)
            ),
            format!("{err:.1e}"),
            ada.metrics.congest_compliant().to_string(),
        ]);
    }
    rep.note(
        "adaptive barriers cut the constant on low-diameter graphs (the windows no \
         longer provision for D = N − 1) while staying correct and collision-free; \
         on a path (D = N − 1) the detection overhead roughly cancels the gain — a \
         step toward the paper's open problem of an O(D + N/log N)-round algorithm"
            .to_string(),
    );
    rep
}
