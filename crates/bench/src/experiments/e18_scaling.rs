//! E18 — parallel-engine scaling: wall clock of the sharded data plane
//! across graph sizes (n ∈ {64, 128, 256}) and worker counts
//! (threads ∈ {1, 2, 4, 8}, where 1 is the serial engine), plus the
//! partition-strategy comparison at the largest size.
//!
//! Where E16 asks "how fast is one round?" at a fixed size, E18 asks
//! "when does parallelism start paying?". Each row reports the wall-clock
//! ratio against the serial run of the same graph as `ratio_permille`
//! (1000 = parity, < 1000 = parallel wins): a host-relative measure both
//! sides of which move together under host noise, which is what the CI
//! `scaling` job guards via `bench_guard --metric ratio_permille` against
//! the committed `BENCH_scaling.json`.
//!
//! Results are asserted bit-identical (betweenness and CONGEST metrics)
//! across every engine, thread count, and partition strategy before any
//! row is emitted. The break-even observed here calibrates
//! `bc_core::AUTO_THREADS_MIN_NODES` (the `--threads auto` threshold).
//!
//! Whether parallel(4) actually dips below 1.00x depends on the host's
//! core count, which is therefore recorded as `host_cores` in the
//! artifact: on a single-core host parity is the physical floor and the
//! ratio measures pure data-plane overhead.

use crate::ExperimentReport;
use bc_congest::SCHEMA_VERSION;
use bc_core::{run_distributed_bc_profiled, DistBcConfig, PartitionStrategy};
use bc_graph::{generators, Graph};
use std::fmt::Write as _;

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// The scaling families: ER and BA at size `n` (the two families whose
/// parallel(4)/serial ratio at n = 256 the CI guard enforces).
fn scaling_families(n: usize) -> Vec<(String, Graph)> {
    vec![
        (
            format!("er-{n}"),
            generators::erdos_renyi_connected(n, (8.0 / n as f64).min(0.5), 7),
        ),
        (format!("ba-{n}"), generators::barabasi_albert(n, 2, 7)),
    ]
}

fn best_wall(
    g: &Graph,
    cfg: &DistBcConfig,
    reps: usize,
) -> (bc_core::DistBcResult, bc_congest::ProfileReport) {
    let (out, mut best) = run_distributed_bc_profiled(g, cfg.clone()).expect("run succeeds");
    for _ in 1..reps {
        let (_, p) = run_distributed_bc_profiled(g, cfg.clone()).expect("run succeeds");
        if p.wall_ns < best.wall_ns {
            best = p;
        }
    }
    (out, best)
}

/// One emitted configuration: engine label + the config that produces it.
fn configs(quick: bool, n: usize) -> Vec<DistBcConfig> {
    let threads: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let mut out: Vec<DistBcConfig> = threads
        .iter()
        .map(|&t| DistBcConfig {
            threads: t,
            ..DistBcConfig::default()
        })
        .collect();
    // Partition strategies only differ under the parallel engine; compare
    // them at the largest size, where the shards are big enough to skew.
    if !quick && n == 256 {
        for partition in [
            PartitionStrategy::DegreeBalanced,
            PartitionStrategy::ScheduleAware,
        ] {
            out.push(DistBcConfig {
                threads: 4,
                partition,
                ..DistBcConfig::default()
            });
        }
    }
    out
}

/// Runs E18: the thread/size scaling sweep with the `BENCH_scaling.json`
/// artifact for the CI `scaling` regression guard.
pub fn run(quick: bool) -> ExperimentReport {
    let sizes: &[usize] = if quick { &[64, 256] } else { &[64, 128, 256] };
    let reps = if quick { 1 } else { 3 };
    let mut rep = ExperimentReport::new(
        "E18",
        "parallel-engine scaling (wall-clock; ratio vs serial is the guarded metric)",
        &[
            "graph",
            "engine",
            "rounds",
            "wall ms",
            "serial ms",
            "ratio",
            "intra msgs",
            "cross msgs",
        ],
    );
    let mut json_entries: Vec<String> = Vec::new();
    for &n in sizes {
        for (family, g) in scaling_families(n) {
            let mut serial: Option<(bc_core::DistBcResult, u64)> = None;
            for cfg in configs(quick, n) {
                let (out, profile) = best_wall(&g, &cfg, reps);
                let serial_wall = match &serial {
                    None => {
                        // threads=1 is always the first config: the serial
                        // reference every later row is normalized against.
                        assert_eq!(
                            profile.engine, "serial",
                            "{family}: sweep must start serial"
                        );
                        serial = Some((out, profile.wall_ns));
                        profile.wall_ns
                    }
                    Some((reference, serial_wall)) => {
                        assert_eq!(
                            out.betweenness, reference.betweenness,
                            "{family}: {} diverged from serial betweenness",
                            profile.engine
                        );
                        assert_eq!(
                            out.metrics, reference.metrics,
                            "{family}: {} diverged from serial metrics",
                            profile.engine
                        );
                        *serial_wall
                    }
                };
                let ratio_permille = profile.wall_ns * 1000 / serial_wall.max(1);
                rep.push_row(vec![
                    family.clone(),
                    profile.engine.clone(),
                    profile.rounds.to_string(),
                    format!("{:.3}", ms(profile.wall_ns)),
                    format!("{:.3}", ms(serial_wall)),
                    format!("{:.2}x", ratio_permille as f64 / 1000.0),
                    profile.intra_shard_messages.to_string(),
                    profile.cross_shard_messages.to_string(),
                ]);
                json_entries.push(format!(
                    "{{\"graph\":\"{family}\",\"engine\":\"{}\",\"wall_ns\":{},\
                     \"serial_wall_ns\":{},\"ratio_permille\":{}}}",
                    profile.engine, profile.wall_ns, serial_wall, ratio_permille
                ));
            }
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut artifact = format!("{{\"schema_version\":{SCHEMA_VERSION},\"experiment\":\"E18\",\"host_cores\":{cores},\"profiles\":[");
    let _ = write!(artifact, "{}", json_entries.join(","));
    artifact.push_str("]}");
    rep.add_artifact("BENCH_scaling.json", artifact);
    rep.note(
        "ratio = wall / serial wall on the same graph (1.00x = parity, lower = \
         parallel wins); CI guards ratio_permille at n=256 so the parallel(4)/serial \
         ratio on er-256/ba-256 cannot silently regress past the committed baseline"
            .to_string(),
    );
    rep.note(format!(
        "this host exposes {cores} core{} (recorded as host_cores in the artifact); \
         with fewer cores than workers the engine detects oversubscription, yields at \
         the round barrier, and wall-clock parity with serial is the physical floor — \
         the ratio then measures pure data-plane overhead, which the free-running \
         barrier keeps to ~10 us/round at n=256",
        if cores == 1 { "" } else { "s" }
    ));
    rep.note(
        "serial rows carry ratio 1.00x by construction; the break-even size \
         observed here calibrates the --threads auto threshold \
         (bc_core::AUTO_THREADS_MIN_NODES)"
            .to_string(),
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scaling_sweep_covers_sizes_and_ratios() {
        let rep = run(true);
        // 2 sizes × 2 families × (serial + parallel(4)).
        assert_eq!(rep.rows.len(), 8);
        let (name, artifact) = &rep.artifacts[0];
        assert_eq!(name, "BENCH_scaling.json");
        assert!(artifact.starts_with("{\"schema_version\":1,"));
        assert!(artifact.contains("\"experiment\":\"E18\""));
        assert!(artifact.contains("\"host_cores\":"));
        assert!(artifact.contains("\"graph\":\"er-256\""));
        assert!(artifact.contains("\"graph\":\"ba-256\""));
        assert!(artifact.contains("\"engine\":\"parallel(4)\""));
        assert!(artifact.contains("\"ratio_permille\":"));
        // Serial rows are self-normalized.
        for row in rep.rows.iter().filter(|r| r[1] == "serial") {
            assert_eq!(row[5], "1.00x", "{row:?}");
        }
    }
}
