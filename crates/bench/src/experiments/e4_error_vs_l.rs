//! E4 — Theorem 1 / Corollary 1: the betweenness relative error as a
//! function of the mantissa width `L`, measured against *exact rational*
//! ground truth. The paper predicts error `O(2^-L)`: halving per extra
//! bit, i.e. slope −1 in log₂–log₂.

use crate::ExperimentReport;
use bc_brandes::betweenness_exact;
use bc_core::{run_distributed_bc, DistBcConfig};
use bc_graph::generators;
use bc_numeric::{FpParams, Rounding};

/// Runs E4.
pub fn run(quick: bool) -> ExperimentReport {
    // A grid has binomially many shortest paths, exercising σ rounding.
    let g = if quick {
        generators::grid(4, 5)
    } else {
        generators::grid(6, 6)
    };
    let exact: Vec<f64> = betweenness_exact(&g).iter().map(|v| v.to_f64()).collect();
    let ls: &[u32] = if quick {
        &[6, 10, 14, 18]
    } else {
        &[4, 6, 8, 10, 12, 14, 16, 20, 24, 28]
    };
    let mut rep = ExperimentReport::new(
        "E4",
        "Corollary 1 — max relative error vs mantissa bits L (exact-rational truth)",
        &["L", "max rel err", "err · 2^L", "log2(err)"],
    );
    let mut errs = Vec::new();
    for &l in ls {
        let cfg = DistBcConfig {
            fp: Some(FpParams::new(l, Rounding::Ceil)),
            ..DistBcConfig::default()
        };
        let out = run_distributed_bc(&g, cfg).expect("runs");
        let err = out
            .betweenness
            .iter()
            .zip(&exact)
            .map(|(a, e)| (a - e).abs() / (1.0 + e))
            .fold(0.0f64, f64::max)
            .max(1e-300);
        errs.push((l, err));
        rep.push_row(vec![
            l.to_string(),
            format!("{err:.3e}"),
            format!("{:.2}", err * (l as f64).exp2()),
            format!("{:.1}", err.log2()),
        ]);
    }
    // Shape check: each +8 bits of mantissa buys ≥ 2^5 error reduction
    // (slope ≈ −1 with small-sample noise).
    for w in errs.windows(2) {
        let (l0, e0) = w[0];
        let (l1, e1) = w[1];
        if e0 > 1e-12 && e1 > 1e-14 {
            let gain = (e0 / e1).log2() / (l1 - l0) as f64;
            assert!(
                gain > 0.3,
                "error must shrink ~2x per bit: L{l0}→L{l1} gain {gain:.2}"
            );
        }
    }
    rep.note(
        "shape: log2(err) falls ≈ 1 per mantissa bit — the O(2^-L) of Theorem 1; with \
         L = Θ(log N) this is the O(N^-c) of Corollary 1"
            .to_string(),
    );
    rep
}
