//! E14 (extension) — the DFS-free token-pipelined APSP (related work
//! [7]/[15]) vs the full betweenness protocol, for distance-only
//! questions: closeness / eccentricity / diameter need only O(N + D)
//! rounds and far less traffic, while betweenness needs the DFS-pipelined
//! counting (simultaneous σ arrivals) plus aggregation. The table makes
//! the paper's implicit design choice measurable.

use crate::ExperimentReport;
use bc_core::apsp_pipeline::run_apsp_pipeline;
use bc_core::{run_distributed_bc, DistBcConfig};
use bc_graph::{algo, generators};

/// Runs E14.
pub fn run(quick: bool) -> ExperimentReport {
    let sizes: &[usize] = if quick {
        &[32, 64]
    } else {
        &[32, 64, 128, 256]
    };
    let mut rep = ExperimentReport::new(
        "E14",
        "extension: pipelined APSP (distances only) vs the full betweenness protocol",
        &[
            "graph",
            "n",
            "D",
            "APSP rounds",
            "full rounds",
            "APSP kbit",
            "full kbit",
            "diameters agree",
        ],
    );
    for &n in sizes {
        let g = generators::erdos_renyi_connected(n, (8.0 / n as f64).min(0.5), 21);
        let apsp = run_apsp_pipeline(&g).expect("runs");
        let full = run_distributed_bc(&g, DistBcConfig::default()).expect("runs");
        assert!(apsp.metrics.congest_compliant());
        assert_eq!(apsp.diameter, algo::diameter(&g));
        for (a, b) in apsp.closeness.iter().zip(&full.closeness) {
            assert!((a - b).abs() < 1e-12, "closeness must agree exactly");
        }
        rep.push_row(vec![
            format!("er-{n}"),
            n.to_string(),
            apsp.diameter.to_string(),
            apsp.rounds.to_string(),
            full.rounds.to_string(),
            (apsp.metrics.total_bits / 1000).to_string(),
            (full.metrics.total_bits / 1000).to_string(),
            (apsp.diameter == full.diameter).to_string(),
        ]);
        assert!(apsp.rounds * 3 < full.rounds);
    }
    rep.note(
        "closeness/eccentricity/diameter — the centralities the paper's introduction \
         calls easy — cost ≈ N + D rounds with no DFS token; betweenness pays ≈ 10 N \
         because the counting phase must deliver each source's σ contributions \
         simultaneously and the aggregation phase must replay the schedule in reverse"
            .to_string(),
    );
    rep
}
