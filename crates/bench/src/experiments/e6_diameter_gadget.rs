//! E6 — Figure 2 / Lemma 8: the diameter gadget's dichotomy. For every
//! `x` and instance, the diameter is exactly `x` when the families are
//! disjoint and `x + 2` when they intersect; and "deciding x vs x+2 does
//! not become easier as x increases" — the dichotomy holds for every `x`.

use crate::ExperimentReport;
use bc_core::{run_distributed_bc, DistBcConfig};
use bc_graph::algo;
use bc_lowerbound::diameter_gadget;
use bc_lowerbound::disjoint::{random_instance, universe_size};

/// Runs E6.
pub fn run(quick: bool) -> ExperimentReport {
    let xs: &[u32] = if quick {
        &[8, 10]
    } else {
        &[8, 10, 12, 16, 24]
    };
    let n = if quick { 3 } else { 6 };
    let m = universe_size(n);
    let mut rep = ExperimentReport::new(
        "E6",
        "Lemma 8 — diameter gadget dichotomy (diameter = x iff families disjoint)",
        &[
            "x",
            "instance",
            "N",
            "cut edges",
            "diameter",
            "expected",
            "distributed D",
        ],
    );
    for &x in xs {
        for intersecting in [false, true] {
            let inst = random_instance(n, m, intersecting, 17 + x as u64);
            let g = diameter_gadget(x, &inst);
            let d = algo::diameter(&g.graph);
            let expected = if intersecting { x + 2 } else { x };
            // Run the distributed protocol (which computes D en passant) on
            // the smaller gadgets.
            let dist_d = if g.graph.n() <= 120 {
                run_distributed_bc(&g.graph, DistBcConfig::default())
                    .map(|o| o.diameter.to_string())
                    .unwrap_or_else(|e| format!("err: {e}"))
            } else {
                "-".into()
            };
            rep.push_row(vec![
                x.to_string(),
                if intersecting {
                    "intersecting"
                } else {
                    "disjoint"
                }
                .to_string(),
                g.graph.n().to_string(),
                g.cut.len().to_string(),
                d.to_string(),
                expected.to_string(),
                dist_d,
            ]);
            assert_eq!(d, expected, "Lemma 8 violated at x={x}");
        }
    }
    rep.note(format!(
        "families: n = {n} subsets of an m = {m} universe (C(m, m/2) ≥ n² as in the paper); \
         the x / x+2 gap persists at every x — the basis of Theorem 5's Ω(D + N/log N)"
    ));
    rep
}
