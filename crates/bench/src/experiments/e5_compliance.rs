//! E5 — Lemmas 3–5 / Theorem 2: the execution satisfies the CONGEST model.
//! The engine *counts* messages per (edge, direction, round) and bits per
//! message; this experiment reports those counters across a size sweep.

use crate::ExperimentReport;
use bc_congest::Budget;
use bc_core::{run_distributed_bc, DistBcConfig};
use bc_graph::generators;

/// Runs E5.
pub fn run(quick: bool) -> ExperimentReport {
    let sizes: &[usize] = if quick {
        &[16, 48]
    } else {
        &[16, 48, 128, 256]
    };
    let mut rep = ExperimentReport::new(
        "E5",
        "Lemmas 3–5 — CONGEST compliance: message sizes and collision counts",
        &[
            "graph",
            "n",
            "max msg bits",
            "budget bits",
            "max msgs/edge/round",
            "collisions",
            "oversized",
        ],
    );
    for &n in sizes {
        for (name, g) in [
            (format!("path-{n}"), generators::path(n)),
            (
                format!("er-{n}"),
                generators::erdos_renyi_connected(n, (6.0 / n as f64).min(0.4), 5),
            ),
            (format!("ba-{n}"), generators::barabasi_albert(n, 3, 5)),
        ] {
            let out = run_distributed_bc(&g, DistBcConfig::default()).expect("runs");
            let budget = Budget::Auto.resolve(n).expect("auto budget");
            rep.push_row(vec![
                name,
                n.to_string(),
                out.metrics.max_message_bits.to_string(),
                budget.to_string(),
                out.metrics.max_messages_per_edge_round.to_string(),
                out.metrics.collisions.to_string(),
                out.metrics.oversized_messages.to_string(),
            ]);
            assert!(out.metrics.congest_compliant());
            assert_eq!(out.metrics.max_messages_per_edge_round, 1);
            assert!(out.metrics.max_message_bits <= budget);
        }
    }
    rep.note(
        "every run: ≤ 1 message per directed edge per round (Lemma 4) and every message \
         within the Θ(log N) budget (Lemmas 3/5) — enforced by the simulator in strict mode, \
         so any schedule bug would abort the run rather than pass silently"
            .to_string(),
    );
    rep
}
