//! Structured experiment output rendered as markdown tables (or JSON via
//! the `repro` binary's encoder, for downstream tooling).

use bc_congest::PhaseStat;
use std::fmt;

/// Headers for tables built with [`ExperimentReport::push_phase_stats`]:
/// one row per protocol phase, labelled by the run they came from.
pub const PHASE_HEADERS: [&str; 7] = [
    "run",
    "phase",
    "rounds [start,end)",
    "rounds",
    "messages",
    "bits",
    "max msg bits",
];

/// Machine-readable round/message/bit totals of one distributed run inside
/// an experiment — the perf-trajectory record `repro` aggregates into
/// `BENCH_rounds.json` so CI can diff perf across PRs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfRecord {
    /// Run label (graph family + size, e.g. `"er-64"`).
    pub run: String,
    /// Rounds to completion.
    pub rounds: u64,
    /// Total messages.
    pub messages: u64,
    /// Total payload bits.
    pub bits: u64,
}

/// One experiment's result: a titled table plus free-form notes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentReport {
    /// Experiment id (`"E3"` etc.).
    pub id: String,
    /// Human title (what paper artifact it regenerates).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Table rows.
    pub rows: Vec<Vec<String>>,
    /// Interpretation notes (the "shape" claims being checked).
    pub notes: Vec<String>,
    /// Machine-readable per-run perf records (not rendered in the table;
    /// aggregated by `repro` into `BENCH_rounds.json`).
    pub perf: Vec<PerfRecord>,
    /// Named machine-readable artifacts `(filename, content)` the
    /// experiment produced (e.g. E15's `BENCH_profile.json`). Experiments
    /// never touch the filesystem themselves — only the `repro` binary
    /// writes these out.
    pub artifacts: Vec<(String, String)>,
}

impl ExperimentReport {
    /// Creates an empty report with headers.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        headers: &[&str],
    ) -> ExperimentReport {
        ExperimentReport {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
            perf: Vec::new(),
            artifacts: Vec::new(),
        }
    }

    /// Records one run's machine-readable round/message/bit totals.
    pub fn push_perf(&mut self, run: impl Into<String>, rounds: u64, messages: u64, bits: u64) {
        self.perf.push(PerfRecord {
            run: run.into(),
            rounds,
            messages,
            bits,
        });
    }

    /// Attaches a named machine-readable artifact for `repro` to write.
    pub fn add_artifact(&mut self, filename: impl Into<String>, content: impl Into<String>) {
        self.artifacts.push((filename.into(), content.into()));
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Appends an interpretation note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Appends one row per phase of `stats`, labelling each with `run`.
    /// The report must have been created with [`PHASE_HEADERS`].
    ///
    /// # Panics
    ///
    /// Panics if the report's header width differs from [`PHASE_HEADERS`].
    pub fn push_phase_stats(&mut self, run: &str, stats: &[PhaseStat]) {
        for p in stats {
            self.push_row(vec![
                run.to_string(),
                p.name.clone(),
                format!("{}..{}", p.start, p.end),
                p.rounds.to_string(),
                p.messages.to_string(),
                p.bits.to_string(),
                p.max_message_bits.to_string(),
            ]);
        }
    }
}

impl fmt::Display for ExperimentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {} — {}\n", self.id, self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "| {} |", sep.join(" | "))?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        for n in &self.notes {
            writeln!(f, "\n> {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut r = ExperimentReport::new("E0", "demo", &["n", "value"]);
        r.push_row(vec!["10".into(), "1.5".into()]);
        r.push_row(vec!["1000".into(), "2".into()]);
        r.note("shape holds");
        let s = r.to_string();
        assert!(s.contains("## E0 — demo"));
        assert!(s.contains("|    n | value |"));
        assert!(s.contains("| 1000 |     2 |"));
        assert!(s.contains("> shape holds"));
    }

    #[test]
    fn perf_and_artifacts_attach_without_rendering() {
        let mut r = ExperimentReport::new("E0", "demo", &["n"]);
        r.push_perf("er-64", 600, 9000, 200_000);
        r.add_artifact("BENCH_demo.json", "{}");
        assert_eq!(r.perf[0].run, "er-64");
        assert_eq!(r.perf[0].bits, 200_000);
        assert_eq!(r.artifacts[0].0, "BENCH_demo.json");
        // Neither shows up in the rendered markdown table.
        let s = r.to_string();
        assert!(!s.contains("er-64"));
        assert!(!s.contains("BENCH_demo"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut r = ExperimentReport::new("E0", "demo", &["a", "b"]);
        r.push_row(vec!["1".into()]);
    }

    #[test]
    fn phase_stats_render_one_row_per_phase() {
        let mut r = ExperimentReport::new("E0", "phases", &PHASE_HEADERS);
        r.push_phase_stats(
            "er-32",
            &[
                PhaseStat {
                    name: "A:tree".into(),
                    start: 0,
                    end: 10,
                    rounds: 10,
                    messages: 40,
                    bits: 400,
                    max_message_bits: 12,
                },
                PhaseStat {
                    name: "B:counting".into(),
                    start: 10,
                    end: 50,
                    rounds: 40,
                    messages: 900,
                    bits: 9000,
                    max_message_bits: 30,
                },
            ],
        );
        let s = r.to_string();
        assert_eq!(r.rows.len(), 2);
        assert!(s.contains("A:tree"));
        assert!(s.contains("10..50"));
        assert!(s.contains("900"));
    }
}
