//! Experiment harness for the reproduction: one module per experiment in
//! `EXPERIMENTS.md` (E1–E10), each returning a structured
//! [`ExperimentReport`] that the `repro` binary renders and the Criterion
//! benches time.
//!
//! Every experiment is deterministic (seeded) so the tables in
//! `EXPERIMENTS.md` regenerate bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod experiments;
pub mod report;

pub use report::{ExperimentReport, PHASE_HEADERS};

/// Error returned by [`run_experiment`] for an id that names no experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownExperiment {
    /// The id that failed to resolve.
    pub id: String,
}

impl fmt::Display for UnknownExperiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown experiment id {:?} (valid ids: {})",
            self.id,
            ALL_EXPERIMENTS.join(", ")
        )
    }
}

impl std::error::Error for UnknownExperiment {}

/// Runs an experiment by id (`"e1"`…`"e21"`), at reduced scale if `quick`.
///
/// # Errors
///
/// Returns [`UnknownExperiment`] (its message lists the valid ids) when
/// `id` names no experiment; callers such as the `repro` CLI turn this
/// into a nonzero exit instead of a panic.
pub fn run_experiment(id: &str, quick: bool) -> Result<Vec<ExperimentReport>, UnknownExperiment> {
    Ok(match id {
        "e1" => vec![experiments::e1_figure1::run()],
        "e2" => vec![experiments::e2_correctness::run(quick)],
        "e3" => vec![
            experiments::e3_rounds::run(quick),
            experiments::e3_rounds::run_phases(quick),
        ],
        "e4" => vec![experiments::e4_error_vs_l::run(quick)],
        "e5" => vec![experiments::e5_compliance::run(quick)],
        "e6" => vec![experiments::e6_diameter_gadget::run(quick)],
        "e7" => vec![experiments::e7_bc_gadget::run(quick)],
        "e8" => vec![experiments::e8_cut_flow::run(quick)],
        "e9" => vec![experiments::e9_central_vs_dist::run(quick)],
        "e10" => vec![
            experiments::e10_ablation::run_scheduling(quick),
            experiments::e10_ablation::run_rounding(quick),
            experiments::e10_ablation::run_encoding(quick),
        ],
        "e11" => vec![experiments::e11_sampling::run(quick)],
        "e12" => vec![experiments::e12_weighted::run(quick)],
        "e13" => vec![experiments::e13_adaptive::run(quick)],
        "e14" => vec![experiments::e14_apsp_pipeline::run(quick)],
        "e15" => vec![experiments::e15_profile::run(quick)],
        "e16" => vec![experiments::e16_engine::run(quick)],
        "e17" => vec![experiments::e17_faults::run(quick)],
        "e18" => vec![experiments::e18_scaling::run(quick)],
        "e19" => vec![experiments::e19_wire::run(quick)],
        "e20" => vec![experiments::e20_serve::run(quick)],
        "e21" => vec![experiments::e21_sampled_scale::run(quick)],
        other => {
            return Err(UnknownExperiment {
                id: other.to_string(),
            })
        }
    })
}

/// All experiment ids in order (E1–E10 regenerate paper artifacts;
/// E11–E21 are the extension experiments).
pub const ALL_EXPERIMENTS: [&str; 21] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19", "e20", "e21",
];
