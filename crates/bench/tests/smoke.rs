//! Smoke tests: every experiment runs at quick scale and its built-in
//! shape assertions hold. This keeps the `repro` binary from rotting and
//! re-checks each paper claim in CI.

use bc_bench::{run_experiment, ALL_EXPERIMENTS};

#[test]
fn all_ids_are_wired() {
    // Every id listed must dispatch (the error path is a bug here).
    for id in ALL_EXPERIMENTS {
        let reports = run_experiment(id, true).expect("listed ids dispatch");
        assert!(!reports.is_empty(), "{id} produced no reports");
        for r in &reports {
            assert!(!r.rows.is_empty(), "{id} produced an empty table");
            assert!(!r.headers.is_empty());
            let rendered = r.to_string();
            assert!(rendered.contains("##"), "{id} renders a heading");
        }
    }
}

#[test]
fn unknown_id_is_an_error_listing_valid_ids() {
    let err = run_experiment("e99", true).expect_err("e99 is not an experiment");
    assert_eq!(err.id, "e99");
    let msg = err.to_string();
    assert!(msg.contains("unknown experiment id"), "{msg}");
    assert!(msg.contains("e1"), "{msg}");
    assert!(msg.contains("e17"), "{msg}");
}

#[test]
fn e1_reproduces_paper_schedule() {
    let reports = run_experiment("e1", true).expect("e1 runs");
    let text = reports[0].to_string();
    // The exact Figure 1 values.
    assert!(text.contains("T=(0,2,4,6,8)"));
    assert!(text.contains("C_B(v2) = 7/2"));
    assert!(text.contains("collisions: 0"));
}

#[test]
fn e3_slope_is_linear() {
    let reports = run_experiment("e3", true).expect("e3 runs");
    let text = reports[0].to_string();
    assert!(text.contains("rounds ≈"), "slope notes present");
}

#[test]
fn e10_has_three_ablations() {
    let reports = run_experiment("e10", true).expect("e10 runs");
    assert_eq!(reports.len(), 3);
    assert_eq!(reports[0].id, "E10a");
    assert_eq!(reports[1].id, "E10b");
    assert_eq!(reports[2].id, "E10c");
}
