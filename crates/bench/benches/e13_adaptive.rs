//! E13 bench: adaptive vs provisioned phase barriers (wall time of the
//! simulation; the round-count comparison is in `repro e13`).

use bc_core::{run_distributed_bc, DistBcConfig, Scheduling};
use bc_graph::generators;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let g = generators::barabasi_albert(64, 3, 2);
    let mut group = c.benchmark_group("e13");
    group.sample_size(10);
    group.bench_function("provisioned_ba64", |b| {
        b.iter(|| {
            run_distributed_bc(black_box(&g), DistBcConfig::default())
                .unwrap()
                .rounds
        })
    });
    group.bench_function("adaptive_ba64", |b| {
        let cfg = DistBcConfig {
            scheduling: Scheduling::Adaptive,
            ..DistBcConfig::default()
        };
        b.iter(|| {
            run_distributed_bc(black_box(&g), cfg.clone())
                .unwrap()
                .rounds
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
