//! E9 bench: centralized Brandes vs the simulated distributed run, sparse
//! and dense.

use bc_bench::experiments::e9_central_vs_dist::brandes_op_count;
use bc_brandes::betweenness_f64;
use bc_core::{run_distributed_bc, DistBcConfig};
use bc_graph::generators;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let sparse = generators::erdos_renyi_connected(64, 0.06, 9);
    let dense = generators::erdos_renyi_connected(64, 0.4, 9);
    let mut group = c.benchmark_group("e9");
    group.sample_size(10);
    group.bench_function("brandes_sparse", |b| {
        b.iter(|| betweenness_f64(black_box(&sparse)))
    });
    group.bench_function("brandes_dense", |b| {
        b.iter(|| betweenness_f64(black_box(&dense)))
    });
    group.bench_function("distributed_sparse", |b| {
        b.iter(|| {
            run_distributed_bc(black_box(&sparse), DistBcConfig::default())
                .unwrap()
                .rounds
        })
    });
    group.bench_function("distributed_dense", |b| {
        b.iter(|| {
            run_distributed_bc(black_box(&dense), DistBcConfig::default())
                .unwrap()
                .rounds
        })
    });
    group.bench_function("brandes_op_count", |b| {
        b.iter(|| brandes_op_count(black_box(&dense)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
