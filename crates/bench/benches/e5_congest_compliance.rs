//! E5 bench: cost of strict CONGEST enforcement vs record-only accounting.

use bc_congest::Enforcement;
use bc_core::{run_distributed_bc, DistBcConfig};
use bc_graph::generators;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let g = generators::barabasi_albert(64, 2, 5);
    let mut group = c.benchmark_group("e5_compliance");
    group.sample_size(10);
    for (name, enforcement) in [
        ("strict", Enforcement::Strict),
        ("record", Enforcement::Record),
    ] {
        group.bench_function(name, |b| {
            let cfg = DistBcConfig {
                enforcement,
                ..DistBcConfig::default()
            };
            b.iter(|| {
                let out = run_distributed_bc(black_box(&g), cfg.clone()).unwrap();
                assert!(out.metrics.congest_compliant());
                out.rounds
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
