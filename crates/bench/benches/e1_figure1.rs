//! E1 bench: the Figure 1 worked example end-to-end (schedule + engine).

use bc_core::{run_distributed_bc, DistBcConfig};
use bc_graph::generators;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let g = generators::paper_figure1();
    c.bench_function("e1/figure1_distributed_run", |b| {
        b.iter(|| {
            let out = run_distributed_bc(black_box(&g), DistBcConfig::default()).unwrap();
            assert!((out.betweenness[1] - 3.5).abs() < 1e-9);
            out.rounds
        })
    });
    c.bench_function("e1/figure1_schedule_table", |b| {
        b.iter(|| black_box(bc_bench::experiments::e1_figure1::paper_wave_times()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
