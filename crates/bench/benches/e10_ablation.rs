//! E10 bench: the three ablations (schedule, rounding, encoding).

use bc_bench::experiments::e10_ablation::diamond_chain;
use bc_brandes::betweenness_ceilfloat;
use bc_core::{run_distributed_bc, DistBcConfig, Scheduling};
use bc_graph::algo::{bfs, sigma_big};
use bc_graph::generators;
use bc_numeric::{FpParams, Rounding};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let g = generators::erdos_renyi_connected(32, 0.15, 3);
    let mut group = c.benchmark_group("e10");
    group.sample_size(10);
    group.bench_function("a_pipelined_n32", |b| {
        b.iter(|| {
            run_distributed_bc(black_box(&g), DistBcConfig::default())
                .unwrap()
                .rounds
        })
    });
    group.bench_function("a_sequential_n32", |b| {
        let cfg = DistBcConfig {
            scheduling: Scheduling::Sequential,
            ..DistBcConfig::default()
        };
        b.iter(|| {
            run_distributed_bc(black_box(&g), cfg.clone())
                .unwrap()
                .rounds
        })
    });
    let grid = generators::grid(5, 5);
    for (name, mode) in [("b_ceil", Rounding::Ceil), ("b_nearest", Rounding::Nearest)] {
        group.bench_function(name, |b| {
            let p = FpParams::new(10, mode);
            b.iter(|| betweenness_ceilfloat(black_box(&grid), p))
        });
    }
    let chain = diamond_chain(64);
    group.bench_function("c_exact_sigma_bignum", |b| {
        b.iter(|| {
            let dag = bfs(black_box(&chain), 0);
            sigma_big(&dag).iter().map(|s| s.bit_len()).max()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
