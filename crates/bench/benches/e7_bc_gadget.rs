//! E7 bench: Figure 3 gadget construction + exact probe readout.

use bc_brandes::betweenness_f64;
use bc_lowerbound::bc_gadget;
use bc_lowerbound::disjoint::{random_instance, universe_size};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let inst = random_instance(8, universe_size(8), true, 2);
    c.bench_function("e7/build_and_probe_n8", |b| {
        b.iter(|| {
            let g = bc_gadget(black_box(&inst));
            let cb = betweenness_f64(&g.graph);
            g.f.iter().map(|&f| cb[f as usize]).sum::<f64>()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
