//! E8 bench: distributed run over the gadget with cut-flow accounting.

use bc_lowerbound::cutflow::measure_bc_gadget;
use bc_lowerbound::disjoint::{random_instance, universe_size};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let inst = random_instance(6, universe_size(6), true, 3);
    let mut group = c.benchmark_group("e8");
    group.sample_size(10);
    group.bench_function("measure_bc_gadget_n6", |b| {
        b.iter(|| {
            let (_, r) = measure_bc_gadget(black_box(&inst)).unwrap();
            assert!(r.cut_bits > 0);
            r.cut_bits
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
