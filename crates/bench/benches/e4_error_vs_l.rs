//! E4 bench: the mantissa sweep (accuracy data comes from `repro e4`).

use bc_core::{run_distributed_bc, DistBcConfig};
use bc_graph::generators;
use bc_numeric::{FpParams, Rounding};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let g = generators::grid(5, 5);
    let mut group = c.benchmark_group("e4_error_vs_l");
    group.sample_size(10);
    for l in [8u32, 16, 24] {
        group.bench_with_input(BenchmarkId::new("grid5x5_L", l), &l, |b, &l| {
            let cfg = DistBcConfig {
                fp: Some(FpParams::new(l, Rounding::Ceil)),
                ..DistBcConfig::default()
            };
            b.iter(|| {
                run_distributed_bc(black_box(&g), cfg.clone())
                    .unwrap()
                    .betweenness
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
