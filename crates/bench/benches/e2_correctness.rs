//! E2 bench: distributed run vs centralized Brandes on the same graph.

use bc_brandes::betweenness_f64;
use bc_core::{run_distributed_bc, DistBcConfig};
use bc_graph::generators;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let g = generators::erdos_renyi_connected(48, 0.07, 1);
    let mut group = c.benchmark_group("e2");
    group.sample_size(10);
    group.bench_function("distributed_er48", |b| {
        b.iter(|| {
            run_distributed_bc(black_box(&g), DistBcConfig::default())
                .unwrap()
                .betweenness
        })
    });
    group.bench_function("brandes_er48", |b| {
        b.iter(|| betweenness_f64(black_box(&g)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
