//! E6 bench: Figure 2 gadget construction + diameter decision.

use bc_graph::algo;
use bc_lowerbound::diameter_gadget;
use bc_lowerbound::disjoint::{random_instance, universe_size};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let inst = random_instance(6, universe_size(6), true, 1);
    c.bench_function("e6/build_and_decide_x12", |b| {
        b.iter(|| {
            let g = diameter_gadget(12, black_box(&inst));
            let d = algo::diameter(&g.graph);
            assert_eq!(d, 14);
            d
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
