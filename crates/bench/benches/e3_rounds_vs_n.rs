//! E3 bench: simulation wall time across N (the round count itself is
//! reported by `repro e3`).

use bc_core::{run_distributed_bc, DistBcConfig};
use bc_graph::generators;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_rounds_vs_n");
    group.sample_size(10);
    for n in [32usize, 64, 128] {
        let g = generators::erdos_renyi_connected(n, (8.0 / n as f64).min(0.5), 7);
        group.bench_with_input(BenchmarkId::new("er", n), &g, |b, g| {
            b.iter(|| {
                run_distributed_bc(black_box(g), DistBcConfig::default())
                    .unwrap()
                    .rounds
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
