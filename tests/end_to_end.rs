//! Cross-crate integration tests exercising the `distbc` public API
//! end-to-end: graph I/O → CONGEST simulation → distributed results vs.
//! exact oracles, and the distributed algorithm run directly on the
//! lower-bound gadgets.

use distbc::brandes::{betweenness_exact, betweenness_f64};
use distbc::congest::Budget;
use distbc::core::{run_distributed_bc, DistBcConfig, Scheduling};
use distbc::graph::{algo, generators, io};
use distbc::lowerbound::disjoint::{random_instance, universe_size};
use distbc::lowerbound::{bc_gadget, diameter_gadget, BC_IF_ABSENT, BC_IF_PRESENT};
use distbc::numeric::{FpParams, Rounding};

#[test]
fn serialized_graph_roundtrips_through_distributed_run() {
    let g = generators::watts_strogatz(48, 4, 0.2, 5);
    let (g, _) = algo::largest_component(&g);
    let text = io::to_edge_list(&g);
    let g2 = io::parse_edge_list(&text).expect("serialized graph parses");
    assert_eq!(g, g2);
    let out = run_distributed_bc(&g2, DistBcConfig::default()).expect("runs");
    let exact = betweenness_f64(&g);
    for (v, (a, e)) in out.betweenness.iter().zip(&exact).enumerate() {
        assert!((a - e).abs() <= 1e-2 * (1.0 + e), "node {v}");
    }
}

#[test]
fn distributed_matches_exact_rationals_at_high_precision() {
    let g = generators::erdos_renyi_connected(26, 0.14, 77);
    let cfg = DistBcConfig {
        fp: Some(FpParams::new(30, Rounding::Ceil)),
        ..DistBcConfig::default()
    };
    let out = run_distributed_bc(&g, cfg).expect("runs");
    for (v, (a, e)) in out
        .betweenness
        .iter()
        .zip(betweenness_exact(&g))
        .enumerate()
    {
        let e = e.to_f64();
        assert!(
            (a - e).abs() <= 1e-6 * (1.0 + e),
            "node {v}: {a} vs exact {e}"
        );
    }
}

#[test]
fn distributed_diameter_decides_lemma8_dichotomy() {
    // The distributed algorithm itself (not a centralized oracle) resolves
    // the Figure 2 diameter question.
    for intersecting in [false, true] {
        let inst = random_instance(3, universe_size(3), intersecting, 13);
        let gadget = diameter_gadget(8, &inst);
        let out = run_distributed_bc(&gadget.graph, DistBcConfig::default()).expect("runs");
        let expect = if intersecting { 10 } else { 8 };
        assert_eq!(out.diameter, expect, "intersecting={intersecting}");
        assert!(out.metrics.congest_compliant());
    }
}

#[test]
fn distributed_bc_decides_lemma9_dichotomy() {
    // Likewise for Figure 3: the distributed run reads off C_B(F_i) and
    // thereby solves set disjointness — the reduction of Theorem 6,
    // executed by the very algorithm the theorem lower-bounds.
    let inst = random_instance(4, universe_size(4), true, 31);
    let gadget = bc_gadget(&inst);
    let out = run_distributed_bc(&gadget.graph, DistBcConfig::default()).expect("runs");
    let mut found_present = false;
    for (i, &fi) in gadget.f.iter().enumerate() {
        let present = inst.y.sets.contains(&inst.x.sets[i]);
        let expect = if present { BC_IF_PRESENT } else { BC_IF_ABSENT };
        let got = out.betweenness[fi as usize];
        assert!(
            (got - expect).abs() < 0.2,
            "F_{i}: distributed {got} vs {expect}"
        );
        found_present |= present;
    }
    assert!(found_present, "planted instance must contain a match");
}

#[test]
fn scheduling_modes_agree() {
    let g = generators::grid(4, 5);
    let pipelined = run_distributed_bc(&g, DistBcConfig::default()).expect("runs");
    let sequential = run_distributed_bc(
        &g,
        DistBcConfig {
            scheduling: Scheduling::Sequential,
            ..DistBcConfig::default()
        },
    )
    .expect("runs");
    for (a, b) in pipelined.betweenness.iter().zip(&sequential.betweenness) {
        // Same arithmetic, different schedule ⇒ nearly identical values
        // (σ-sum order may differ at equal distances).
        assert!((a - b).abs() <= 1e-3 * (1.0 + b));
    }
    assert!(sequential.rounds > pipelined.rounds);
}

#[test]
fn tight_fixed_budget_still_suffices() {
    // The protocol's messages fit even a hand-tightened Θ(log N) budget.
    let g = generators::cycle(32);
    let cfg = DistBcConfig {
        budget: Budget::Bits(64),
        ..DistBcConfig::default()
    };
    let out = run_distributed_bc(&g, cfg).expect("runs within 64-bit budget");
    assert!(out.metrics.max_message_bits <= 64);
}

#[test]
fn closeness_of_all_families_matches_oracle() {
    for g in [
        generators::path(15),
        generators::star(15),
        generators::cycle(12),
        generators::balanced_tree(3, 2),
    ] {
        let out = run_distributed_bc(&g, DistBcConfig::default()).expect("runs");
        let oracle = distbc::brandes::closeness_centrality(&g);
        for (mine, theirs) in out.closeness.iter().zip(&oracle) {
            assert!((mine - theirs).abs() < 1e-12);
        }
    }
}

#[test]
fn karate_club_leaders() {
    // The canonical social-network sanity check: instructor (0) and
    // president (33) are the top-2 betweenness nodes, and the distributed
    // algorithm agrees with Brandes on the whole club.
    let g = distbc::graph::datasets::karate_club();
    let out = run_distributed_bc(&g, DistBcConfig::default()).expect("runs");
    let exact = betweenness_f64(&g);
    for (v, (a, e)) in out.betweenness.iter().zip(&exact).enumerate() {
        assert!((a - e).abs() <= 1e-2 * (1.0 + e), "node {v}");
    }
    let mut order: Vec<usize> = (0..g.n()).collect();
    order.sort_by(|&a, &b| exact[b].total_cmp(&exact[a]));
    let top2: std::collections::HashSet<usize> = order[..2].iter().copied().collect();
    assert_eq!(top2, [0usize, 33].into_iter().collect());
    // Published value: C_B(0) ≈ 231.07 under the unordered-pair convention.
    assert!((exact[0] - 231.07).abs() < 0.1, "got {}", exact[0]);
}

#[test]
fn medici_dominate_florence() {
    let g = distbc::graph::datasets::florentine_families();
    let out = run_distributed_bc(&g, DistBcConfig::default()).expect("runs");
    let medici = distbc::graph::datasets::MEDICI as usize;
    let top = (0..g.n())
        .max_by(|&a, &b| out.betweenness[a].total_cmp(&out.betweenness[b]))
        .expect("non-empty");
    assert_eq!(top, medici, "the Medici are the betweenness leader");
    // Published value: C_B(Medici) = 47.5 on the marriage network — exact
    // centrally, matched by the distributed run up to its O(2^-L) error.
    let exact = betweenness_f64(&g);
    assert_eq!(exact[medici], 47.5);
    assert!((out.betweenness[medici] - 47.5).abs() < 1e-2 * 47.5);
}
