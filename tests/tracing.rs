//! Integration tests for the event-tracing subsystem: record a full
//! protocol execution on every engine, feed the trace to the offline
//! analyzer, and confirm it re-derives the paper's schedule facts.

use distbc::congest::asynchronous::{run_synchronized_traced, AsyncConfig};
use distbc::congest::trace::{check, read_jsonl, JsonlSink, RingSink, TraceEvent};
use distbc::core::{
    run_distributed_bc, run_distributed_bc_traced, AlgoOptions, DistBcConfig, DistBcNode,
};
use distbc::graph::generators;

/// The paper's Figure 1 example. The DFS visits the sources in preorder
/// (v1..v5 = nodes 0..4), and the tightest Lemma-4-admissible schedule
/// along that preorder is the paper's `T = (0, 2, 4, 6, 8)` (Section IV's
/// worked example, relative to the first wave). The analyzer must recover
/// both from the trace alone, and the recorded waves must satisfy Lemma 4.
fn assert_figure1_trace(events: &[TraceEvent]) {
    let report = check::check(events);
    assert!(report.ok(), "{report}");
    assert_eq!(report.preorder, vec![0, 1, 2, 3, 4], "DFS preorder");
    assert_eq!(
        report.waves_checked, 4,
        "all consecutive wave pairs checked"
    );
    assert_eq!(
        report.minimal_schedule,
        Some(vec![0, 2, 4, 6, 8]),
        "paper's minimal schedule for Figure 1"
    );
}

#[test]
fn figure1_trace_validates_on_serial_engine() {
    let g = generators::paper_figure1();
    let (out, mut sink) = run_distributed_bc_traced(
        &g,
        DistBcConfig::default(),
        Box::new(RingSink::new(1 << 20)),
    )
    .unwrap();
    let events = sink.drain_events();
    assert_figure1_trace(&events);
    let report = check::check(&events);
    assert_eq!(report.messages, out.metrics.total_messages);
    assert_eq!(report.rounds, out.rounds);
    assert!((out.betweenness[1] - 3.5).abs() < 1e-6);
}

#[test]
fn figure1_trace_validates_on_parallel_engine() {
    let g = generators::paper_figure1();
    let cfg = DistBcConfig {
        threads: 3,
        ..DistBcConfig::default()
    };
    let (_, mut sink) =
        run_distributed_bc_traced(&g, cfg, Box::new(RingSink::new(1 << 20))).unwrap();
    assert_figure1_trace(&sink.drain_events());
}

#[test]
fn figure1_trace_validates_on_synchronizer() {
    let g = generators::paper_figure1();
    let n = g.n();
    // Reference run for the round count and the provisioned schedule.
    let out = run_distributed_bc(&g, DistBcConfig::default()).unwrap();
    let opts = AlgoOptions::for_graph_size(n);
    let (_, _, mut sink) = run_synchronized_traced(
        &g,
        AsyncConfig::default(),
        out.rounds + 1,
        |v, _| DistBcNode::new(n, v, opts.clone()),
        Box::new(RingSink::new(1 << 20)),
    );
    // The synchronizer traces only execution events; prepend the context
    // the driver would have recorded.
    let mut events = vec![
        TraceEvent::Topology {
            n,
            edges: g.edges().collect(),
        },
        TraceEvent::Schedule {
            counting_start: out.schedule.counting_start,
            reduce_start: out.schedule.reduce_start,
            broadcast_start: out.schedule.broadcast_start,
            agg_start: out.schedule.agg_start,
        },
    ];
    events.extend(sink.drain_events());
    assert_figure1_trace(&events);
}

#[test]
fn jsonl_trace_roundtrips_through_disk() {
    let g = generators::paper_figure1();
    let path = std::env::temp_dir().join("distbc-figure1-trace-test.jsonl");
    let sink = JsonlSink::create(&path).unwrap();
    let (_, mut sink) =
        run_distributed_bc_traced(&g, DistBcConfig::default(), Box::new(sink)).unwrap();
    sink.flush().unwrap();
    drop(sink);
    let events = read_jsonl(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_figure1_trace(&events);
}

mod phase_accounting {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The four phase windows partition `[0, rounds)`, so the
        /// per-phase breakdown must sum *exactly* to the global metrics —
        /// additively for rounds/messages/bits, as a maximum for the
        /// largest message.
        #[test]
        fn phase_stats_sum_to_global_totals(
            (n, seed, threads) in (8usize..48, 0u64..1_000, 1usize..4)
        ) {
            let g = generators::erdos_renyi_connected(n, 0.15, seed);
            let cfg = DistBcConfig { threads, ..DistBcConfig::default() };
            let out = run_distributed_bc(&g, cfg).unwrap();
            prop_assert_eq!(out.phase_stats.len(), 4);
            let rounds: u64 = out.phase_stats.iter().map(|p| p.rounds).sum();
            let messages: u64 = out.phase_stats.iter().map(|p| p.messages).sum();
            let bits: u64 = out.phase_stats.iter().map(|p| p.bits).sum();
            let max_bits = out
                .phase_stats
                .iter()
                .map(|p| p.max_message_bits)
                .max()
                .unwrap_or(0);
            prop_assert_eq!(rounds, out.rounds);
            prop_assert_eq!(messages, out.metrics.total_messages);
            prop_assert_eq!(bits, out.metrics.total_bits);
            prop_assert_eq!(max_bits, out.metrics.max_message_bits);
            // Windows are contiguous and anchored at the run's ends.
            prop_assert_eq!(out.phase_stats[0].start, 0);
            prop_assert_eq!(out.phase_stats[3].end, out.rounds);
            for w in out.phase_stats.windows(2) {
                prop_assert_eq!(w[0].end, w[1].start);
            }
        }
    }
}

#[test]
fn tracing_leaves_results_and_metrics_unchanged() {
    let g = generators::erdos_renyi_connected(40, 0.1, 21);
    let plain = run_distributed_bc(&g, DistBcConfig::default()).unwrap();
    let (traced, _) = run_distributed_bc_traced(
        &g,
        DistBcConfig::default(),
        Box::new(RingSink::new(1 << 20)),
    )
    .unwrap();
    assert_eq!(plain.rounds, traced.rounds);
    assert_eq!(plain.metrics, traced.metrics);
    assert_eq!(plain.betweenness, traced.betweenness);
    assert_eq!(plain.phase_stats, traced.phase_stats);
}
