//! End-to-end CLI tests for the observability surface: record a trace with
//! `distbc centrality --trace`, re-validate it with `distbc check-trace`,
//! and analyze it with `distbc trace-stats`; plus the `--profile` output.

use distbc::congest::trace::{encode_event, ProtocolDetail, TraceEvent};
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn distbc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_distbc"))
        .args(args)
        .output()
        .expect("spawn distbc")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("distbc-cli-{}-{name}", std::process::id()))
}

/// Full round trip on the paper's Figure 1: run → trace → check-trace →
/// trace-stats. The analyzer must recover the observed schedule
/// `T = (0, 2, 4, 6, 10)` (wave 5 waits for the DFS token to backtrack
/// v4→v3→v2→v5 through the BFS tree), the paper's minimal Lemma-4
/// schedule `(0, 2, 4, 6, 8)`, and the 2-round gap between them.
#[test]
fn trace_roundtrip_figure1() {
    let trace = tmp("fig1.jsonl");
    let run = distbc(&[
        "centrality",
        "--generate",
        "figure1",
        "--algorithm",
        "distributed",
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert!(run.status.success(), "centrality --trace failed: {run:?}");

    let check = distbc(&["check-trace", trace.to_str().unwrap()]);
    assert!(check.status.success(), "check-trace failed: {check:?}");
    let check_out = stdout(&check);
    assert!(
        check_out.contains("wave spacing (Lemma 4): OK"),
        "{check_out}"
    );

    let stats = distbc(&["trace-stats", trace.to_str().unwrap()]);
    assert!(stats.status.success(), "trace-stats failed: {stats:?}");
    let text = stdout(&stats);
    assert!(
        text.contains("wave schedule T = (0, 2, 4, 6, 10)"),
        "{text}"
    );
    assert!(
        text.contains("Lemma-4 slack: 2 rounds above minimal"),
        "{text}"
    );
    assert!(text.contains("DFS token critical path"), "{text}");
    assert!(text.contains("hottest directed edges"), "{text}");

    // CSV carries the same schedule machine-readably: source 4 started at
    // relative round 10 against minimal slot 8 → slack 2.
    let csv = distbc(&["trace-stats", trace.to_str().unwrap(), "--csv"]);
    assert!(csv.status.success());
    let csv = stdout(&csv);
    assert!(
        csv.starts_with("source,ts,rel_ts,minimal_ts,slack"),
        "{csv}"
    );
    let last = csv.lines().last().unwrap();
    let fields: Vec<&str> = last.split(',').collect();
    assert_eq!(fields[0], "4", "{csv}");
    assert_eq!(fields[2], "10", "{csv}");
    assert_eq!(fields[3], "8", "{csv}");
    assert_eq!(fields[4], "2", "{csv}");

    std::fs::remove_file(&trace).ok();
}

/// A Figure 1 trace whose waves run at the paper's schedule
/// `T = (0, 2, 4, 6, 8)` (Section IV's worked example) must analyze to
/// exactly that schedule with zero Lemma-4 slack.
#[test]
fn trace_stats_reports_paper_schedule_with_zero_slack() {
    let events = [
        TraceEvent::Topology {
            n: 5,
            edges: vec![(0, 1), (1, 2), (1, 4), (2, 3), (4, 3)],
        },
        wave(0, 0),
        wave(1, 2),
        wave(2, 4),
        wave(3, 6),
        wave(4, 8),
    ];
    let mut body = String::new();
    for e in &events {
        encode_event(e, &mut body);
        body.push('\n');
    }
    let path = tmp("paper-schedule.jsonl");
    std::fs::write(&path, body).unwrap();

    let stats = distbc(&["trace-stats", path.to_str().unwrap()]);
    assert!(stats.status.success(), "{stats:?}");
    let text = stdout(&stats);
    assert!(text.contains("wave schedule T = (0, 2, 4, 6, 8)"), "{text}");
    assert!(
        text.contains("Lemma-4 slack: 0 (minimal schedule achieved)"),
        "{text}"
    );

    std::fs::remove_file(&path).ok();
}

fn wave(node: u32, ts: u64) -> TraceEvent {
    TraceEvent::Protocol {
        round: ts,
        node,
        detail: ProtocolDetail::WaveStart { ts },
    }
}

/// `--profile --json` emits one machine-readable profile object on stdout.
#[test]
fn profile_json_smoke() {
    let run = distbc(&[
        "centrality",
        "--generate",
        "er:30:0.15:3",
        "--algorithm",
        "distributed",
        "--profile",
        "--json",
    ]);
    assert!(run.status.success(), "{run:?}");
    let text = stdout(&run);
    assert!(text.contains("\"engine\":\"serial\""), "{text}");
    assert!(text.contains("\"phases\":["), "{text}");
    assert!(text.contains("\"name\":\"B:counting\""), "{text}");
    assert!(text.contains("\"wall_ns\":"), "{text}");
}

/// The human `--profile` report prints the per-phase wall-clock table.
#[test]
fn profile_human_output() {
    let run = distbc(&[
        "centrality",
        "--generate",
        "path:20",
        "--algorithm",
        "distributed",
        "--profile",
    ]);
    assert!(run.status.success(), "{run:?}");
    let text = stdout(&run);
    assert!(text.contains("serial"), "{text}");
    assert!(text.contains("B:counting"), "{text}");
}

/// Fault flags: incompatible combinations are usage errors (exit 2,
/// distinct from runtime failures at exit 1), and a reliable run over a
/// lossy plan reproduces the fault-free output exactly.
#[test]
fn fault_flags_usage_errors_and_reliable_chaos_run() {
    // --faults without --reliable (or --best-effort) is rejected at parse
    // time with the usage exit code.
    let bad = distbc(&[
        "centrality",
        "--generate",
        "path:10",
        "--faults",
        "drop=0.1",
    ]);
    assert_eq!(bad.status.code(), Some(2), "{bad:?}");
    // --fault-seed without --faults likewise.
    let bad = distbc(&["centrality", "--generate", "path:10", "--fault-seed", "7"]);
    assert_eq!(bad.status.code(), Some(2), "{bad:?}");
    // A malformed plan spec is also a usage error, not a runtime one.
    let bad = distbc(&[
        "centrality",
        "--generate",
        "path:10",
        "--faults",
        "drop=lots",
        "--reliable",
    ]);
    assert_eq!(bad.status.code(), Some(2), "{bad:?}");

    // End-to-end chaos: the reliable transport makes the lossy run print
    // byte-identical centralities, and the stderr summary reports the
    // repair traffic.
    let clean = distbc(&[
        "centrality",
        "--generate",
        "er:24:0.12:5",
        "--algorithm",
        "distributed",
        "--csv",
    ]);
    assert!(clean.status.success(), "{clean:?}");
    let chaos = distbc(&[
        "centrality",
        "--generate",
        "er:24:0.12:5",
        "--algorithm",
        "distributed",
        "--csv",
        "--faults",
        "seed=9,drop=0.15,dup=0.1,delay=0.2:3",
        "--reliable",
    ]);
    assert!(chaos.status.success(), "{chaos:?}");
    assert_eq!(stdout(&chaos), stdout(&clean));
    let err = String::from_utf8_lossy(&chaos.stderr).into_owned();
    assert!(err.contains("retransmitted"), "{err}");
    assert!(err.contains("dropped"), "{err}");
}

/// Sampling misuse exits 2 like any other usage error — both the cases
/// parse can catch (`sampled:0`, estimator without sampling) and the one
/// it cannot (`K > n`, known only after the graph loads).
#[test]
fn sampling_usage_errors_and_jiyan_run() {
    let bad = distbc(&[
        "centrality",
        "--generate",
        "path:10",
        "--algorithm",
        "sampled:0",
    ]);
    assert_eq!(bad.status.code(), Some(2), "{bad:?}");

    let bad = distbc(&[
        "centrality",
        "--generate",
        "path:10",
        "--algorithm",
        "sampled:11",
    ]);
    assert_eq!(bad.status.code(), Some(2), "{bad:?}");
    let err = String::from_utf8_lossy(&bad.stderr).into_owned();
    assert!(
        err.contains("more sources than the graph has nodes"),
        "{err}"
    );

    let bad = distbc(&[
        "centrality",
        "--generate",
        "path:10",
        "--estimator",
        "jiyan",
    ]);
    assert_eq!(bad.status.code(), Some(2), "{bad:?}");

    // serve validates K against n the same way.
    let bad = distbc(&[
        "serve",
        "--listen",
        "tcp:127.0.0.1:0",
        "--generate",
        "path:10",
        "--algorithm",
        "sampled:11",
    ]);
    assert_eq!(bad.status.code(), Some(2), "{bad:?}");

    let run = distbc(&[
        "centrality",
        "--generate",
        "er:40:0.1:7",
        "--algorithm",
        "sampled:8",
        "--estimator",
        "jiyan",
        "--csv",
    ]);
    assert!(run.status.success(), "{run:?}");
    let csv = stdout(&run);
    assert_eq!(csv.lines().count(), 41, "header + one row per node: {csv}");
}

fn spawn_distbc(args: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_distbc"))
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn distbc")
}

/// Polls a child to completion, failing the test on a hang — the one
/// outcome the wire teardown contract forbids.
fn wait_bounded(child: &mut Child, what: &str, limit: Duration) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if start.elapsed() > limit {
            let _ = child.kill();
            let _ = child.wait();
            panic!("{what} hung past {limit:?}");
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Two real `serve-shard` processes + a `--connect` leader print exactly
/// the CSV an in-process run prints.
#[test]
fn multi_process_socket_run_matches_serial() {
    let socks = [tmp("wire-ok-s0.sock"), tmp("wire-ok-s1.sock")];
    let addrs: Vec<String> = socks
        .iter()
        .map(|p| format!("unix:{}", p.display()))
        .collect();
    let mut shards: Vec<Child> = addrs
        .iter()
        .map(|a| spawn_distbc(&["serve-shard", "--listen", a]))
        .collect();

    let graph = ["--generate", "er:24:0.12:5"];
    let leader = distbc(&[
        "centrality",
        graph[0],
        graph[1],
        "--csv",
        "--connect",
        &addrs.join(","),
        "--shards",
        "2",
    ]);
    assert!(leader.status.success(), "wire leader failed: {leader:?}");
    let serial = distbc(&["centrality", graph[0], graph[1], "--csv"]);
    assert!(serial.status.success(), "{serial:?}");
    assert_eq!(
        stdout(&leader),
        stdout(&serial),
        "socket engine diverged from the in-process run"
    );
    let err = String::from_utf8_lossy(&leader.stderr).into_owned();
    assert!(err.contains("retransmitted"), "{err}");

    for (i, sh) in shards.iter_mut().enumerate() {
        let status = wait_bounded(sh, &format!("shard {i}"), Duration::from_secs(30));
        assert!(status.success(), "shard {i} exited with {status:?}");
    }
    for p in &socks {
        std::fs::remove_file(p).ok();
    }
}

/// Teardown audit: a shard that hangs up mid-handshake turns into a
/// leader run error with a postmortem dump — exit 1, never a hang.
#[test]
fn dead_shard_fails_the_leader_with_postmortem() {
    let s0 = tmp("wire-dead-s0.sock");
    let fake = tmp("wire-dead-s1.sock");
    let a0 = format!("unix:{}", s0.display());
    let a1 = format!("unix:{}", fake.display());
    let mut shard0 = spawn_distbc(&["serve-shard", "--listen", &a0]);
    // "Shard 1" accepts the leader and immediately hangs up — the
    // deterministic image of a process dying the instant it is reached.
    std::fs::remove_file(&fake).ok();
    let listener = std::os::unix::net::UnixListener::bind(&fake).expect("bind fake shard");
    let fake_thread = std::thread::spawn(move || {
        if let Ok((conn, _)) = listener.accept() {
            drop(conn);
        }
    });

    let pm = tmp("wire-dead-pm.json");
    std::fs::remove_file(&pm).ok();
    let mut leader = spawn_distbc(&[
        "centrality",
        "--generate",
        "path:30",
        "--connect",
        &format!("{a0},{a1}"),
        "--postmortem",
        pm.to_str().unwrap(),
    ]);
    let status = wait_bounded(&mut leader, "wire leader", Duration::from_secs(60));
    assert_eq!(status.code(), Some(1), "dead shard must be a runtime error");
    assert!(
        pm.exists(),
        "leader must dump a postmortem when a shard dies"
    );
    let pm_text = std::fs::read_to_string(&pm).unwrap();
    assert!(pm_text.contains("\"reason\""), "{pm_text}");

    // Shard 0 is parked waiting for its peer; it must not outlive the
    // run. Kill it the way an operator would and reap it.
    let _ = shard0.kill();
    let _ = shard0.wait();
    fake_thread.join().ok();
    for p in [&s0, &fake] {
        std::fs::remove_file(p).ok();
    }
    std::fs::remove_file(&pm).ok();
}

/// Kill-one-shard chaos: SIGKILL a real shard process mid-run. The
/// leader must terminate promptly — with exit 1 (and a postmortem) when
/// the kill landed mid-run, or 0 in the rare case the run had already
/// finished — but never hang.
#[test]
fn killed_shard_mid_run_does_not_hang_the_leader() {
    let socks = [tmp("wire-kill-s0.sock"), tmp("wire-kill-s1.sock")];
    let addrs: Vec<String> = socks
        .iter()
        .map(|p| format!("unix:{}", p.display()))
        .collect();
    let mut shards: Vec<Child> = addrs
        .iter()
        .map(|a| spawn_distbc(&["serve-shard", "--listen", a]))
        .collect();
    let pm = tmp("wire-kill-pm.json");
    std::fs::remove_file(&pm).ok();
    let mut leader = spawn_distbc(&[
        "centrality",
        "--generate",
        "er:200:0.03:7",
        "--connect",
        &addrs.join(","),
        "--postmortem",
        pm.to_str().unwrap(),
    ]);
    std::thread::sleep(Duration::from_millis(300));
    let _ = shards[1].kill();
    let _ = shards[1].wait();

    let status = wait_bounded(&mut leader, "wire leader", Duration::from_secs(120));
    match status.code() {
        Some(0) => {} // run won the race; termination is what matters
        Some(1) => assert!(pm.exists(), "failed leader must leave a postmortem"),
        other => panic!("unexpected leader exit {other:?}"),
    }
    let _ = shards[0].kill();
    let _ = shards[0].wait();
    for p in &socks {
        std::fs::remove_file(p).ok();
    }
    std::fs::remove_file(&pm).ok();
}

/// Spawns `distbc serve` on a unix socket and waits (bounded) until a
/// `query --meta` round trip succeeds.
#[allow(clippy::zombie_processes)] // the returned Child is waited on by every caller
fn spawn_server(args: &[&str], addr: &str) -> Child {
    let mut server = spawn_distbc(args);
    let start = Instant::now();
    loop {
        let probe = distbc(&["query", "--connect", addr, "--meta"]);
        if probe.status.success() {
            return server;
        }
        if start.elapsed() > Duration::from_secs(30) {
            let _ = server.kill();
            let _ = server.wait();
            panic!("server at {addr} never came up: {probe:?}");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The serving path end to end: `distbc serve` answers `distbc query
/// --top N --csv` with exactly the bytes `distbc centrality --csv`
/// prints — before a mutation and after an add-edge/flush cycle (the
/// offline run then reads the mutated graph from a file).
#[test]
fn serve_query_bit_identical_to_offline_cli() {
    let sock = tmp("serve-bitid.sock");
    std::fs::remove_file(&sock).ok();
    let addr = format!("unix:{}", sock.display());
    let spec = "er:30:0.15:3";
    let mut server = spawn_server(
        &[
            "serve",
            "--listen",
            &addr,
            "--generate",
            spec,
            "--algorithm",
            "brandes",
        ],
        &addr,
    );

    let offline = distbc(&[
        "centrality",
        "--generate",
        spec,
        "--algorithm",
        "brandes",
        "--csv",
    ]);
    assert!(offline.status.success(), "{offline:?}");
    let served = distbc(&["query", "--connect", &addr, "--top", "30", "--csv"]);
    assert!(served.status.success(), "{served:?}");
    assert_eq!(
        stdout(&served),
        stdout(&offline),
        "served snapshot diverged from the offline CLI"
    );

    // Mutate: add an edge the generator did not produce, flush, and
    // diff against an offline run over the mutated graph.
    let g = distbc::graph::generators::erdos_renyi_connected(30, 0.15, 3);
    let (u, v) = (0..30u32)
        .flat_map(|u| ((u + 1)..30).map(move |v| (u, v)))
        .find(|&(u, v)| !g.has_edge(u, v))
        .expect("a non-edge");
    let mutated = g.add_edge(u, v).expect("add_edge");
    let graph_file = tmp("serve-bitid-mutated.txt");
    std::fs::write(&graph_file, distbc::graph::io::to_edge_list(&mutated)).unwrap();

    let queued = distbc(&[
        "query",
        "--connect",
        &addr,
        "--add-edge",
        &format!("{u}:{v}"),
        "--flush",
    ]);
    assert!(queued.status.success(), "{queued:?}");
    let text = stdout(&queued);
    assert!(text.contains("queued mutation #1"), "{text}");
    assert!(text.contains("flushed; snapshot now v2"), "{text}");

    let offline = distbc(&[
        "centrality",
        "--input",
        graph_file.to_str().unwrap(),
        "--algorithm",
        "brandes",
        "--csv",
    ]);
    assert!(offline.status.success(), "{offline:?}");
    let served = distbc(&["query", "--connect", &addr, "--top", "30", "--csv"]);
    assert!(served.status.success(), "{served:?}");
    assert_eq!(
        stdout(&served),
        stdout(&offline),
        "post-mutation snapshot diverged from the offline CLI on the mutated graph"
    );

    // Invalid mutations fail the query (exit 1) without poisoning the
    // server.
    let dup = distbc(&[
        "query",
        "--connect",
        &addr,
        "--add-edge",
        &format!("{u}:{v}"),
    ]);
    assert_eq!(dup.status.code(), Some(1), "{dup:?}");
    let alive = distbc(&["query", "--connect", &addr, "--meta"]);
    assert!(alive.status.success(), "{alive:?}");

    let _ = server.kill();
    let _ = server.wait();
    std::fs::remove_file(&sock).ok();
    std::fs::remove_file(&graph_file).ok();
}

/// The shutdown contract: SIGTERM (and SIGINT) drain the server and it
/// exits 0 — never a nonzero code, never a hang.
#[test]
fn serve_sigterm_drains_and_exits_zero() {
    let sock = tmp("serve-sigterm.sock");
    std::fs::remove_file(&sock).ok();
    let addr = format!("unix:{}", sock.display());
    let mut server = spawn_server(
        &[
            "serve",
            "--listen",
            &addr,
            "--generate",
            "path:20",
            "--algorithm",
            "brandes",
        ],
        &addr,
    );

    let probe = distbc(&["query", "--connect", &addr, "--top", "3"]);
    assert!(probe.status.success(), "{probe:?}");

    let kill = Command::new("kill")
        .args(["-TERM", &server.id().to_string()])
        .status()
        .expect("spawn kill");
    assert!(kill.success(), "kill -TERM failed");
    let status = wait_bounded(&mut server, "distbc serve", Duration::from_secs(30));
    assert_eq!(
        status.code(),
        Some(0),
        "SIGTERM must drain and exit 0, got {status:?}"
    );
    std::fs::remove_file(&sock).ok();
}

/// `--metrics` under `--adaptive` derives phase windows from the trace
/// (satellite: the old stderr apology is gone).
#[test]
fn adaptive_metrics_reports_phase_table() {
    let run = distbc(&[
        "centrality",
        "--generate",
        "er:30:0.15:3",
        "--algorithm",
        "distributed",
        "--adaptive",
        "--metrics",
    ]);
    assert!(run.status.success(), "{run:?}");
    let text = stdout(&run);
    assert!(text.contains("B:counting"), "{text}");
    let err = String::from_utf8_lossy(&run.stderr).into_owned();
    assert!(!err.contains("not yet derived"), "{err}");
    assert!(!err.contains("no phase boundaries"), "{err}");
}
