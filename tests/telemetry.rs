//! The telemetry layer must be observationally free: attaching a
//! [`Telemetry`] registry changes *no* protocol-visible output —
//! betweenness values, round counts, message metrics, and phase stats are
//! bit-identical with and without it, on every engine (serial, pooled
//! parallel at several widths, α-synchronizer) and through the fault
//! injector + reliable transport. This extends the `tests/profiling.rs`
//! pattern to the always-on counter layer.

use distbc::congest::asynchronous::{
    run_synchronized, run_synchronized_faulty, run_synchronized_telemetry, AsyncConfig,
};
use distbc::congest::telemetry::HistogramId;
use distbc::congest::{Counter, FaultPlan, Postmortem, Telemetry};
use distbc::core::{run_distributed_bc, AlgoOptions, DistBcConfig, DistBcNode};
use distbc::graph::generators;
use proptest::prelude::*;
use std::sync::Arc;

/// Runs `cfg` twice on the same graph — without telemetry and with a fresh
/// registry attached — asserts every observable output is bit-identical,
/// and returns the registry so callers can probe what it recorded.
fn assert_telemetry_free(g: &distbc::graph::Graph, cfg: DistBcConfig) -> Arc<Telemetry> {
    let plain = run_distributed_bc(g, cfg.clone()).expect("plain run succeeds");
    let tel = Arc::new(Telemetry::new(cfg.threads.max(1), 32));
    let metered = run_distributed_bc(
        g,
        DistBcConfig {
            telemetry: Some(tel.clone()),
            ..cfg
        },
    )
    .expect("telemetered run succeeds");
    assert_eq!(plain.rounds, metered.rounds);
    assert_eq!(plain.metrics, metered.metrics);
    assert_eq!(plain.betweenness, metered.betweenness);
    assert_eq!(plain.phase_stats, metered.phase_stats);
    // The registry must describe the run it rode along with.
    let snap = tel.snapshot();
    assert!(snap.get(Counter::Rounds) > 0);
    assert!(snap.get(Counter::Messages) > 0);
    assert!(snap.get(Counter::NodesStepped) > 0);
    assert!(snap.get(Counter::Rounds) <= metered.rounds);
    tel
}

#[test]
fn telemetry_is_free_on_all_engines() {
    let g = generators::erdos_renyi_connected(36, 0.12, 17);
    for threads in [0usize, 2, 7] {
        let tel = assert_telemetry_free(
            &g,
            DistBcConfig {
                threads,
                ..DistBcConfig::default()
            },
        );
        assert!(!tel.recent_rounds().is_empty(), "threads={threads}");
    }
}

#[test]
fn telemetry_is_free_under_faults_with_reliable_transport() {
    let g = generators::erdos_renyi_connected(30, 0.15, 5);
    let plan = FaultPlan {
        drop: 0.10,
        duplicate: 0.05,
        ..FaultPlan::seeded(11)
    };
    for threads in [0usize, 2] {
        let tel = assert_telemetry_free(
            &g,
            DistBcConfig {
                threads,
                faults: Some(plan.clone()),
                reliable: true,
                ..DistBcConfig::default()
            },
        );
        let snap = tel.snapshot();
        assert!(
            snap.get(Counter::FramesSent) > 0,
            "reliable transport streams frame counters"
        );
        assert!(
            snap.get(Counter::Retransmits) > 0,
            "a 10% drop plan must force retransmissions"
        );
        assert!(snap.get(Counter::FaultsDropped) > 0);
    }
}

#[test]
fn telemetry_is_free_on_synchronizer() {
    let g = generators::erdos_renyi_connected(20, 0.15, 77);
    let n = g.n();
    let sync = run_distributed_bc(&g, DistBcConfig::default()).unwrap();
    let pulses = sync.rounds + 1;
    let opts = AlgoOptions::for_graph_size(n);
    let cfg = AsyncConfig {
        max_delay: 4,
        seed: 9,
    };
    // Fault-free: telemetered α-sync vs plain α-sync.
    let (plain_nodes, plain_report) =
        run_synchronized(&g, cfg, pulses, |v, _| DistBcNode::new(n, v, opts.clone()));
    let tel = Arc::new(Telemetry::new(1, 32));
    let (tel_nodes, tel_report) = run_synchronized_telemetry(
        &g,
        cfg,
        pulses,
        None,
        |v, _| DistBcNode::new(n, v, opts.clone()),
        tel.clone(),
    );
    for (p, q) in plain_nodes.iter().zip(&tel_nodes) {
        assert_eq!(
            p.betweenness(),
            q.betweenness(),
            "telemetry changed the synchronizer's output"
        );
    }
    assert_eq!(plain_report.virtual_time, tel_report.virtual_time);
    assert_eq!(plain_report.control_messages, tel_report.control_messages);
    assert_eq!(plain_report.payload_messages, tel_report.payload_messages);
    let snap = tel.snapshot();
    assert_eq!(snap.get(Counter::Messages), tel_report.payload_messages);
    assert!(snap.get(Counter::Rounds) > 0);
    assert!(!tel.recent_rounds().is_empty());

    // Faulty: telemetered faulty α-sync vs the plain faulty wrapper.
    let plan = FaultPlan {
        drop: 0.05,
        duplicate: 0.05,
        ..FaultPlan::seeded(3)
    };
    let (faulty_nodes, faulty_report) =
        run_synchronized_faulty(&g, cfg, pulses, plan.clone(), |v, _| {
            DistBcNode::new(n, v, opts.clone())
        });
    let tel = Arc::new(Telemetry::new(1, 32));
    let (tel_nodes, tel_report) = run_synchronized_telemetry(
        &g,
        cfg,
        pulses,
        Some(plan),
        |v, _| DistBcNode::new(n, v, opts.clone()),
        tel,
    );
    for (p, q) in faulty_nodes.iter().zip(&tel_nodes) {
        assert_eq!(
            p.betweenness(),
            q.betweenness(),
            "telemetry changed the faulty synchronizer's output"
        );
    }
    assert_eq!(faulty_report.virtual_time, tel_report.virtual_time);
    assert_eq!(faulty_report.payload_messages, tel_report.payload_messages);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Bit-identity holds for arbitrary connected ER graphs across the
    /// serial and pooled engines, with and without a lossy fault plan
    /// behind the reliable transport.
    #[test]
    fn telemetry_bit_identity_proptest(
        n in 16usize..40,
        p_pct in 10u32..=22,
        seed in 0u64..1000,
        threads_idx in 0usize..3,
        lossy in any::<bool>(),
    ) {
        let threads = [0usize, 2, 7][threads_idx];
        let g = generators::erdos_renyi_connected(n, p_pct as f64 / 100.0, seed);
        let (faults, reliable) = if lossy {
            (
                Some(FaultPlan {
                    drop: 0.08,
                    duplicate: 0.04,
                    ..FaultPlan::seeded(seed)
                }),
                true,
            )
        } else {
            (None, false)
        };
        assert_telemetry_free(
            &g,
            DistBcConfig {
                threads,
                faults,
                reliable,
                ..DistBcConfig::default()
            },
        );
    }
}

#[test]
fn postmortem_round_trips_and_keeps_the_final_k_rounds() {
    const K: usize = 8;
    let tel = Telemetry::new(2, K);
    for round in 0..20u64 {
        tel.add(0, Counter::Messages, 10 + round);
        tel.add(1, Counter::MessageBits, 64);
        tel.add(0, Counter::NodesStepped, 5);
        tel.record(0, HistogramId::InboxDepth, 3);
        tel.finish_round(round);
    }
    let json = tel.postmortem_json("test: induced failure");
    let pm = Postmortem::parse(&json).expect("postmortem parses back");
    assert_eq!(pm.schema_version, 1);
    assert_eq!(pm.reason, "test: induced failure");
    assert_eq!(pm.round, 20);
    // The ring holds exactly the final K rounds, oldest first.
    let rounds: Vec<u64> = pm.recent_rounds.iter().map(|r| r.round).collect();
    assert_eq!(rounds, (12..20).collect::<Vec<_>>());
    for rec in &pm.recent_rounds {
        assert_eq!(rec.messages, 10 + rec.round);
        assert_eq!(rec.bits, 64);
        assert_eq!(rec.nodes_stepped, 5);
    }
    // Counters survive the dump/parse cycle exactly.
    let snap = tel.snapshot();
    for (name, value) in &pm.counters {
        let expected = snap
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("unknown counter {name} in postmortem"));
        assert_eq!(*value, expected, "counter {name} diverged in round-trip");
    }
    assert!(pm
        .counters
        .iter()
        .any(|(name, value)| name == "messages" && *value > 0));

    // A wrong schema version must be rejected, not silently accepted.
    let bad = json.replacen("\"schema_version\":1", "\"schema_version\":999", 1);
    assert!(Postmortem::parse(&bad).is_err());
}
