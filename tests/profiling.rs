//! The profiler must be observationally free: turning it on changes *no*
//! protocol-visible output — betweenness values, round counts, message
//! metrics, and phase stats are bit-identical with and without it, on
//! every engine (serial, parallel, α-synchronizer) and both schedulers
//! (provisioned and adaptive).

use distbc::congest::asynchronous::{run_synchronized, run_synchronized_profiled, AsyncConfig};
use distbc::congest::Profiler;
use distbc::core::{
    run_distributed_bc, run_distributed_bc_profiled, AlgoOptions, DistBcConfig, DistBcNode,
    Scheduling,
};
use distbc::graph::generators;

fn assert_profiling_free(cfg: DistBcConfig) {
    let g = generators::erdos_renyi_connected(36, 0.12, 17);
    let plain = run_distributed_bc(&g, cfg.clone()).unwrap();
    let (profiled, report) = run_distributed_bc_profiled(&g, cfg).unwrap();
    assert_eq!(plain.rounds, profiled.rounds);
    assert_eq!(plain.metrics, profiled.metrics);
    assert_eq!(plain.betweenness, profiled.betweenness);
    assert_eq!(plain.phase_stats, profiled.phase_stats);
    // The profile itself must describe the same execution.
    assert_eq!(report.rounds, profiled.rounds);
    assert!(report.wall_ns >= report.compute_ns);
}

#[test]
fn profiling_is_free_on_serial_engine() {
    let cfg = DistBcConfig::default();
    assert_profiling_free(cfg.clone());
    let g = generators::paper_figure1();
    let (out, report) = run_distributed_bc_profiled(&g, cfg).unwrap();
    assert!((out.betweenness[1] - 3.5).abs() < 1e-9);
    assert_eq!(report.engine, "serial");
    // Provisioned runs expose the four phase windows with wall-clock.
    let names: Vec<&str> = report.phases.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(
        names,
        ["A:tree", "B:counting", "C:reduce+bcast", "D:aggregation"]
    );
    let span_sum: u64 = report.phases.iter().map(|p| p.rounds).sum();
    assert_eq!(span_sum, report.rounds);
}

#[test]
fn profiling_is_free_on_parallel_engine() {
    let cfg = DistBcConfig {
        threads: 4,
        ..DistBcConfig::default()
    };
    assert_profiling_free(cfg.clone());
    let g = generators::erdos_renyi_connected(36, 0.12, 17);
    let (_, report) = run_distributed_bc_profiled(&g, cfg).unwrap();
    assert_eq!(report.engine, "parallel(4)");
    let w = report.workers.expect("parallel run reports worker stats");
    assert_eq!(w.workers, 4);
    assert!(w.utilization > 0.0 && w.utilization <= 1.0);
    assert!(w.imbalance >= 1.0);
}

#[test]
fn profiling_is_free_on_adaptive_scheduler() {
    assert_profiling_free(DistBcConfig {
        scheduling: Scheduling::Adaptive,
        ..DistBcConfig::default()
    });
    // Adaptive runs have no provisioned windows — the profile has no
    // phase spans, but the totals still hold.
    let g = generators::erdos_renyi_connected(36, 0.12, 17);
    let (out, report) = run_distributed_bc_profiled(
        &g,
        DistBcConfig {
            scheduling: Scheduling::Adaptive,
            ..DistBcConfig::default()
        },
    )
    .unwrap();
    assert!(report.phases.is_empty());
    assert_eq!(report.rounds, out.rounds);
}

#[test]
fn profiling_is_free_on_synchronizer() {
    let g = generators::erdos_renyi_connected(20, 0.15, 77);
    let n = g.n();
    let sync = run_distributed_bc(&g, DistBcConfig::default()).unwrap();
    let pulses = sync.rounds + 1;
    let opts = AlgoOptions::for_graph_size(n);
    for (max_delay, seed) in [(1u64, 0u64), (4, 9)] {
        let cfg = AsyncConfig { max_delay, seed };
        let (plain_nodes, plain_report) =
            run_synchronized(&g, cfg, pulses, |v, _| DistBcNode::new(n, v, opts.clone()));
        let (prof_nodes, prof_report, profiler) = run_synchronized_profiled(
            &g,
            cfg,
            pulses,
            |v, _| DistBcNode::new(n, v, opts.clone()),
            Profiler::new(),
        );
        for (p, q) in plain_nodes.iter().zip(&prof_nodes) {
            assert_eq!(
                p.betweenness(),
                q.betweenness(),
                "delay={max_delay}: profiling changed the synchronizer's output"
            );
        }
        assert_eq!(plain_report.virtual_time, prof_report.virtual_time);
        assert_eq!(plain_report.control_messages, prof_report.control_messages);
        assert_eq!(plain_report.payload_messages, prof_report.payload_messages);
        let report = profiler.report("alpha-sync", &[]);
        let s = report.sync.expect("synchronizer reports pulse counters");
        assert!(s.deliveries > 0);
        assert!(s.max_queue_depth > 0);
    }
}
