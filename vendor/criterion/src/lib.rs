//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness. The build environment has no registry access, so this
//! vendored crate keeps the workspace's `harness = false` benches compiling
//! and running: each `bench_function` executes a short warm-up plus a fixed
//! number of timed iterations and prints the mean wall-clock time. There is
//! no outlier analysis, no HTML report, and no saved baselines — numbers are
//! indicative only.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in favor
/// of `std::hint::black_box`, which most benches here already use).
pub use std::hint::black_box;

/// Timing loop handle passed to every benchmark closure.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Times `routine` over this bencher's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call to populate caches / lazy statics.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total = start.elapsed();
    }
}

/// The harness entry point, created by [`criterion_main!`].
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: R,
    ) -> &mut Self {
        run_one(id.into(), self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count for subsequent benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: R,
    ) -> &mut Self {
        run_one(format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: R,
    ) -> &mut Self {
        run_one(format!("{}/{}", self.name, id.0), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op here; upstream flushes reports).
    pub fn finish(self) {}
}

/// A benchmark identifier of the form `name/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Combines a function name with a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }
}

fn run_one<R: FnMut(&mut Bencher)>(label: String, iters: u64, mut f: R) {
    let mut b = Bencher {
        iters,
        total: Duration::ZERO,
    };
    f(&mut b);
    let mean = if b.total.is_zero() {
        Duration::ZERO
    } else {
        b.total / b.iters.max(1) as u32
    };
    println!("bench {label:<40} {iters} iters, mean {mean:?}");
}

/// Declares a benchmark group function, mirroring upstream's plain form.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the `main` function running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        c.bench_function("demo/add", |b| b.iter(|| black_box(2u64) + 2));
        let mut g = c.benchmark_group("demo_group");
        g.sample_size(3);
        g.bench_function("mul", |b| b.iter(|| black_box(3u64) * 3));
        g.bench_with_input(BenchmarkId::new("pow", 4), &4u32, |b, &p| {
            b.iter(|| 2u64.pow(p))
        });
        g.finish();
    }

    criterion_group!(benches, demo);

    #[test]
    fn harness_runs() {
        benches();
    }
}
