//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate. The build environment has no registry access, so this vendored
//! crate reimplements exactly the surface this workspace's property tests
//! use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map`, implemented
//!   for integer ranges, tuples, `&str` patterns of the form `".{a,b}"`,
//!   [`collection::vec`], and [`option::of`];
//! * [`any`] for the integer primitives and `bool`;
//! * [`ProptestConfig`] (only `cases` is honored);
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`], and
//!   [`prop_assert_ne!`] macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! case number and seed, not a minimized input), and generation streams are
//! not compatible with upstream's. Case generation is deterministic per
//! test (seeded from the test's module path and name) so failures
//! reproduce across runs.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic per-test random source driving strategy generation.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Seeds the generator from a test's fully qualified name (FNV-1a) so
    /// every run of the same test explores the same case sequence.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }

    /// Next 64 uniform bits.
    pub fn bits(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform draw from `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.0.gen_range(0..n)
    }

    /// Uniform draw from `[0, n)` as `usize`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }
}

/// Error type produced by the `prop_assert*` macros inside a test body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration. Only `cases` is honored by this stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values for one test-case argument.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `fun`.
    fn prop_map<O, F>(self, fun: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, fun }
    }

    /// Feeds every generated value into `fun` to pick a second strategy,
    /// then draws from that.
    fn prop_flat_map<S2, F>(self, fun: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, fun }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    fun: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.fun)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    fun: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.fun)(self.source.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u128 - self.start as u128) as u64;
                (self.start as u128 + rng.below(width) as u128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as u128 - lo as u128) as u64;
                if width == u64::MAX {
                    return rng.bits() as $t;
                }
                (lo as u128 + rng.below(width + 1) as u128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128) as u64;
                if width == u64::MAX {
                    return rng.bits() as $t;
                }
                (lo as i128 + rng.below(width + 1) as i128) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<u128> {
    type Value = u128;

    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        let width = self.end - self.start;
        let draw = ((rng.bits() as u128) << 64) | rng.bits() as u128;
        self.start + draw % width
    }
}

impl Strategy for RangeInclusive<u128> {
    type Value = u128;

    fn generate(&self, rng: &mut TestRng) -> u128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let draw = ((rng.bits() as u128) << 64) | rng.bits() as u128;
        if lo == 0 && hi == u128::MAX {
            return draw;
        }
        lo + draw % (hi - lo + 1)
    }
}

impl Strategy for Range<i128> {
    type Value = i128;

    fn generate(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty range strategy");
        let width = self.end.wrapping_sub(self.start) as u128;
        let draw = ((rng.bits() as u128) << 64) | rng.bits() as u128;
        self.start.wrapping_add((draw % width) as i128)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical "anything" strategy, see [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Truncation keeps all bit patterns reachable for every width.
                (((rng.bits() as u128) << 64) | rng.bits() as u128) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bits() & 1 == 1
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// `&str` regex-like patterns. Only the shape `".{a,b}"` (any characters,
/// length between `a` and `b`) is interpreted; anything else falls back to
/// short arbitrary strings, which is enough for fuzz-style parser tests.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 16));
        let len = lo + rng.index(hi - lo + 1);
        let mut s = String::with_capacity(len);
        for _ in 0..len {
            // Bias toward ASCII (where parser edge cases live) but keep a
            // tail of arbitrary Unicode scalars.
            let c = match rng.below(10) {
                0..=5 => (0x20 + rng.below(0x5f)) as u8 as char,
                6 => ['\n', '\t', '\r', ' '][rng.index(4)],
                7 => (b'0' + rng.below(10) as u8) as char,
                _ => loop {
                    if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                        break c;
                    }
                },
            };
            s.push(c);
        }
        s
    }
}

/// Parses `".{a,b}"` into `(a, b)`.
fn parse_dot_repeat(pat: &str) -> Option<(usize, usize)> {
    let body = pat.strip_prefix(".{")?.strip_suffix('}')?;
    let (a, b) = body.split_once(',')?;
    Some((a.trim().parse().ok()?, b.trim().parse().ok()?))
}

/// Length bound for [`collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.index(self.size.hi - self.size.lo + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// See [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Same 1-in-5 `None` weight as upstream's default.
            if rng.below(5) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// A strategy producing `None` or `Some` of the inner strategy's values.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// The customary glob import for tests.
pub mod prelude {
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror so `prop::collection::vec` resolves.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the upstream grammar this workspace uses: an optional
/// `#![proptest_config(..)]` header followed by one or more
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let test_name = concat!(module_path!(), "::", stringify!($name));
            let mut rng = $crate::TestRng::for_test(test_name);
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        test_name, case, cfg.cases, e
                    );
                }
            }
        }
    )*};
}

/// Fails the current proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current proptest case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

/// Fails the current proptest case unless the two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{}\n  both: {:?}",
            format!($($fmt)+), l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(n in 2usize..40, seed in any::<u64>(), b in any::<bool>()) {
            prop_assert!((2..40).contains(&n));
            let _ = (seed, b);
        }

        #[test]
        fn vec_and_flat_map(
            pairs in (1usize..10).prop_flat_map(|n| {
                prop::collection::vec((0u32..n as u32, 0u32..n as u32), 0..=20)
                    .prop_map(move |v| (n, v))
            }),
        ) {
            let (n, v) = pairs;
            prop_assert!(v.len() <= 20);
            for (a, bb) in v {
                prop_assert!((a as usize) < n && (bb as usize) < n);
            }
        }

        #[test]
        fn string_pattern_lengths(text in ".{0,50}") {
            prop_assert!(text.chars().count() <= 50);
        }

        #[test]
        fn optional_values(maybe in crate::option::of(5usize..6)) {
            if let Some(v) = maybe {
                prop_assert_eq!(v, 5);
            }
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        let s = (0u64..1000, any::<bool>());
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn assert_macros_error_path() {
        fn run(x: u32) -> Result<(), crate::TestCaseError> {
            prop_assert_eq!(x, 3);
            prop_assert_ne!(x, 4);
            prop_assert!(x < 100, "x was {}", x);
            Ok(())
        }
        assert!(run(3).is_ok());
        let msg = run(5).unwrap_err().to_string();
        assert!(msg.contains("left"), "{msg}");
    }
}
