//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no network access to a
//! crates.io registry, so this vendored crate provides exactly the subset
//! of the `rand 0.8` API the workspace uses:
//!
//! * [`rngs::SmallRng`] — a small, fast, seedable, non-cryptographic PRNG
//!   (xoshiro256++, the same family the real `SmallRng` uses on 64-bit
//!   targets, seeded through SplitMix64);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over `Range` / `RangeInclusive` of the unsigned
//!   integer types, and [`Rng::gen_bool`].
//!
//! Sampling algorithms differ from the upstream crate (plain rejection-free
//! reduction instead of widening-multiply rejection), so random streams are
//! *not* bit-compatible with upstream `rand` — only determinism per seed is
//! guaranteed, which is all the workspace relies on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core of every random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        if p >= 1.0 {
            return true;
        }
        // Threshold comparison on 64 bits: P(next < p·2⁶⁴) = p up to 2⁻⁶⁴.
        let threshold = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < threshold
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end - self.start) as u128;
                self.start + (draw_u128(rng) % width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi - lo) as u128 + 1;
                if width == 0 || width > u128::MAX {
                    unreachable!()
                }
                lo + (draw_u128(rng) % width) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<u128> for Range<u128> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "cannot sample empty range");
        let width = self.end - self.start;
        self.start + draw_u128(rng) % width
    }
}

/// 128 uniform bits from two generator outputs.
fn draw_u128<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
    ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
}

/// The concrete small generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind upstream `SmallRng` on 64-bit
    /// platforms. Not cryptographically secure; excellent statistical
    /// quality for simulation workloads.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 key expansion, as recommended by the xoshiro
            // authors (and used by upstream rand).
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let equal = (0..100).all(|_| a.gen_range(0u32..1000) == c.gen_range(0u32..1000));
        assert!(!equal, "different seeds produce different streams");
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5usize..=5);
            assert_eq!(w, 5);
            let x = rng.gen_range(1u64..=3);
            assert!((1..=3).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rough_mean() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = rng.gen_range(5u32..5);
    }

    #[test]
    fn full_u64_range_inclusive_reachable() {
        // Regression guard for the width computation at the type boundary.
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10 {
            let _ = rng.gen_range(1u64..u64::MAX);
        }
        let _ = rng.gen_range(0u128..u128::MAX);
    }
}
