//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate, covering the one API this workspace uses: `crossbeam::thread::scope`
//! with scoped spawns. Since Rust 1.63 the standard library ships
//! [`std::thread::scope`] with equivalent semantics, so this crate is a thin
//! adapter that preserves crossbeam's call shape (`scope(..)` returns a
//! `Result`, spawn closures receive a `&Scope` argument).

#![forbid(unsafe_code)]

pub mod thread {
    use std::any::Any;

    /// Scope handle passed to [`scope`] closures and to every spawned thread.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; joined explicitly or implicitly at scope end.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread that may borrow from the enclosing scope. The
        /// closure receives a `&Scope` so it can spawn siblings, matching
        /// crossbeam's signature (callers that don't need it pass `|_|`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope in which threads can borrow non-`'static` data.
    ///
    /// Unlike crossbeam (which collects panics from unjoined threads into the
    /// `Err` variant), [`std::thread::scope`] propagates such panics directly,
    /// so this adapter always returns `Ok` — the `Result` exists only to keep
    /// crossbeam's call sites (`.expect("scope failed")`) compiling unchanged.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|scope| {
            let mid = data.len() / 2;
            let (lo, hi) = data.split_at(mid);
            let h1 = scope.spawn(move |_| lo.iter().sum::<u64>());
            let h2 = scope.spawn(move |_| hi.iter().sum::<u64>());
            h1.join().unwrap() + h2.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_from_scope_arg() {
        let r = crate::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }
}
