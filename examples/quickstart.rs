//! Quickstart: compute betweenness centrality distributively on a random
//! network and check it against centralized Brandes.
//!
//! Run with: `cargo run --example quickstart`

use distbc::brandes::betweenness_f64;
use distbc::core::{run_distributed_bc, DistBcConfig};
use distbc::graph::generators;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // A connected Erdős–Rényi network of 64 "routers".
    let g = generators::erdos_renyi_connected(64, 0.06, 2024);
    println!(
        "network: n={} nodes, m={} edges, diameter={}",
        g.n(),
        g.m(),
        distbc::graph::algo::diameter(&g)
    );

    // Run the paper's O(N)-round CONGEST algorithm (simulated).
    let out = run_distributed_bc(&g, DistBcConfig::default())?;
    println!(
        "distributed run: {} rounds, {} messages, {} total bits, max message {} bits",
        out.rounds,
        out.metrics.total_messages,
        out.metrics.total_bits,
        out.metrics.max_message_bits
    );
    println!(
        "CONGEST compliant: {} (collisions={}, oversized={})",
        out.metrics.congest_compliant(),
        out.metrics.collisions,
        out.metrics.oversized_messages
    );

    // Compare with centralized Brandes.
    let exact = betweenness_f64(&g);
    let max_rel = out
        .betweenness
        .iter()
        .zip(&exact)
        .map(|(d, c)| (d - c).abs() / (1.0 + c))
        .fold(0.0f64, f64::max);
    println!(
        "max relative deviation vs centralized Brandes: {max_rel:.2e} \
         (L={} mantissa bits)",
        out.fp.mantissa_bits()
    );

    // Top-5 most central nodes.
    let mut idx: Vec<usize> = (0..g.n()).collect();
    idx.sort_by(|&a, &b| out.betweenness[b].total_cmp(&out.betweenness[a]));
    println!("\n top nodes by betweenness (distributed | centralized):");
    for &v in idx.iter().take(5) {
        println!(
            "  node {v:>3}: {:>10.3} | {:>10.3}",
            out.betweenness[v], exact[v]
        );
    }
    Ok(())
}
