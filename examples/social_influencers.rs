//! Domain scenario: find the top "influencers" (highest-betweenness
//! members) of a scale-free social network, comparing the exact
//! distributed algorithm against the centralized exact and sampling
//! baselines the paper's related work discusses.
//!
//! Run with: `cargo run --release --example social_influencers`

use distbc::brandes::{approx::brandes_pich, betweenness_f64};
use distbc::core::{run_distributed_bc, DistBcConfig};
use distbc::graph::generators;
use std::error::Error;

fn top_k(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    idx.truncate(k);
    idx
}

fn main() -> Result<(), Box<dyn Error>> {
    // A Barabási–Albert "social graph": 200 members, preferential
    // attachment with 3 links per newcomer.
    let g = generators::barabasi_albert(200, 3, 7);
    println!(
        "social network: {} members, {} friendships, max degree {}",
        g.n(),
        g.m(),
        g.max_degree()
    );

    // 1. The paper's distributed algorithm (every member ends up knowing
    //    its own centrality — no coordinator collects the graph).
    let out = run_distributed_bc(&g, DistBcConfig::default())?;
    println!(
        "\ndistributed: {} rounds (≈ {:.1}·N), {:.1} kbit total traffic",
        out.rounds,
        out.rounds as f64 / g.n() as f64,
        out.metrics.total_bits as f64 / 1000.0
    );

    // 2. Centralized exact Brandes.
    let exact = betweenness_f64(&g);

    // 3. Brandes–Pich sampling with 10% sources.
    let sampled = brandes_pich(&g, g.n() / 10, 99);

    let k = 10;
    let dist_top = top_k(&out.betweenness, k);
    let exact_top = top_k(&exact, k);
    let sample_top = top_k(&sampled, k);

    println!("\nrank | distributed (exact)    | centralized Brandes    | 10% sampling");
    for r in 0..k {
        println!(
            "{:>4} | node {:>3} ({:>9.2}) | node {:>3} ({:>9.2}) | node {:>3} ({:>9.2})",
            r + 1,
            dist_top[r],
            out.betweenness[dist_top[r]],
            exact_top[r],
            exact[exact_top[r]],
            sample_top[r],
            sampled[sample_top[r]],
        );
    }

    let dist_set: std::collections::HashSet<_> = dist_top.iter().collect();
    let overlap_exact = exact_top.iter().filter(|v| dist_set.contains(v)).count();
    let sample_set: std::collections::HashSet<_> = sample_top.iter().collect();
    let overlap_sample = exact_top.iter().filter(|v| sample_set.contains(v)).count();
    println!(
        "\ntop-{k} agreement with exact: distributed {overlap_exact}/{k}, sampling {overlap_sample}/{k}"
    );
    assert_eq!(
        overlap_exact, k,
        "the distributed algorithm is exact up to float rounding"
    );
    Ok(())
}
