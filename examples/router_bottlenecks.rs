//! Domain scenario: a router network operator wants, in one distributed
//! pass, (a) the traffic bottlenecks (betweenness), (b) the best
//! coordinator placement (closeness), and (c) the network diameter — the
//! paper's algorithm delivers all three, since the counting phase is a
//! full APSP.
//!
//! The topology is a barbell: two dense server rooms joined by a thin
//! corridor of backbone links — the classic worst case for bottleneck
//! analysis.
//!
//! Run with: `cargo run --example router_bottlenecks`

use distbc::core::{run_distributed_bc, DistBcConfig};
use distbc::graph::generators;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let clique = 12; // routers per server room
    let corridor = 5; // backbone hops between the rooms
    let g = generators::barbell(clique, corridor);
    println!(
        "router network: {} routers, {} links (two {clique}-cliques, {corridor}-hop corridor)",
        g.n(),
        g.m()
    );

    let out = run_distributed_bc(&g, DistBcConfig::default())?;
    println!(
        "\none distributed pass: {} rounds, diameter = {}",
        out.rounds, out.diameter
    );

    // (a) Bottlenecks: the corridor routers dominate betweenness.
    let mut by_bc: Vec<usize> = (0..g.n()).collect();
    by_bc.sort_by(|&a, &b| out.betweenness[b].total_cmp(&out.betweenness[a]));
    println!("\ntop bottleneck routers (betweenness):");
    for &v in by_bc.iter().take(corridor.min(5)) {
        let role = if (clique..clique + corridor).contains(&v) {
            "corridor"
        } else {
            "room"
        };
        println!("  router {v:>3} [{role:>8}]: {:.1}", out.betweenness[v]);
    }
    // Every corridor router outranks every room router.
    let min_corridor = (clique..clique + corridor)
        .map(|v| out.betweenness[v])
        .fold(f64::INFINITY, f64::min);
    let max_room = (0..clique)
        .chain(clique + corridor..g.n())
        .map(|v| out.betweenness[v])
        .fold(0.0f64, f64::max);
    assert!(min_corridor > max_room);

    // (b) Coordinator placement: the corridor middle maximizes closeness.
    let best = (0..g.n())
        .max_by(|&a, &b| out.closeness[a].total_cmp(&out.closeness[b]))
        .expect("non-empty");
    println!(
        "\nbest coordinator (max closeness): router {best} \
         (closeness {:.5}, graph centrality {:.3})",
        out.closeness[best], out.graph_centrality[best]
    );
    assert!((clique..clique + corridor).contains(&best));

    // (c) The protocol is CONGEST-compliant — small messages only.
    println!(
        "\nmax message: {} bits (budget: Θ(log N)); collisions: {}",
        out.metrics.max_message_bits, out.metrics.collisions
    );
    Ok(())
}
