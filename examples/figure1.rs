//! Reproduces the paper's Figure 1 and the Section VII worked example: the
//! per-BFS-tree message sending times of Algorithm 3 on the 5-node graph,
//! the ψ/δ values, and `C_B(v2) = 7/2`.
//!
//! Run with: `cargo run --example figure1`

use distbc::brandes::{betweenness_exact, dependencies_from};
use distbc::core::{run_distributed_bc, DistBcConfig};
use distbc::graph::{algo, generators};
use std::collections::HashMap;
use std::error::Error;

#[allow(clippy::needless_range_loop)] // indices mirror the paper's v1..v5 tables
fn main() -> Result<(), Box<dyn Error>> {
    let g = generators::paper_figure1();
    let n = g.n();
    let d = algo::diameter(&g); // 3
    println!("Figure 1 graph: v1–v2, v2–v3, v2–v5, v3–v4, v5–v4 (D = {d})\n");

    // The paper's wave start times T_s: DFS preorder v1..v5 with
    // T_next = T_prev + d(prev, next) + 1 (Algorithm 2 lines 3–5).
    let order = [0u32, 1, 2, 3, 4];
    let dist = algo::apsp(&g);
    let mut ts = vec![0u64; n];
    for w in order.windows(2) {
        let (p, c) = (w[0] as usize, w[1] as usize);
        ts[c] = ts[p] + dist[p][c] as u64 + 1;
    }
    println!("wave start times: {}", fmt_ts(&ts)); // 0 2 4 6 8 as in the paper

    // Figure 1's tables: sending time of each node in each BFS tree,
    // T_s(u) = T_s + D − d(s, u) (Algorithm 3 line 3).
    for s in 0..n {
        println!("\nBFS(v{}):  T_s = {}", s + 1, ts[s]);
        for u in 0..n {
            if u == s {
                continue;
            }
            let t = ts[s] + d as u64 - dist[s][u] as u64;
            println!(
                "  v{} sends at T_v{}(v{}) = {} + {} - {} = {t}",
                u + 1,
                s + 1,
                u + 1,
                ts[s],
                d,
                dist[s][u]
            );
        }
    }

    // Lemma 4 check: no node ever sends two aggregation messages in the
    // same round (over all sources).
    let mut sends: HashMap<(usize, u64), u32> = HashMap::new();
    for s in 0..n {
        for u in 0..n {
            if u != s {
                *sends
                    .entry((u, ts[s] + d as u64 - dist[s][u] as u64))
                    .or_default() += 1;
            }
        }
    }
    let collisions = sends.values().filter(|&&c| c > 1).count();
    println!("\nLemma 4 check: {collisions} colliding (node, round) pairs");
    assert_eq!(collisions, 0);

    // Section VII worked values: ψ_{v1}(v3) = ψ_{v1}(v5) = 1/2,
    // δ_{v1·}(v2) = 3.
    let dep = dependencies_from(&g, 0);
    println!("\nδ_v1·(v2) = {} (paper: 3)", dep[1]);
    println!("δ_v1·(v3) = {} = ψ·σ = 1/2 (paper: ψ_v1(v3) = 1/2)", dep[2]);
    println!("δ_v1·(v5) = {} (paper: ψ_v1(v5) = 1/2)", dep[4]);

    // C_B(v2) = 7/2 — exact rationals, and the actual distributed run.
    let exact = betweenness_exact(&g);
    println!("\nexact C_B(v2) = {} (paper: 7/2)", exact[1]);
    let out = run_distributed_bc(&g, DistBcConfig::default())?;
    println!(
        "distributed C_B(v2) = {} in {} rounds (CONGEST compliant: {})",
        out.betweenness[1],
        out.rounds,
        out.metrics.congest_compliant()
    );
    assert!((out.betweenness[1] - 3.5).abs() < 1e-9);
    Ok(())
}

fn fmt_ts(ts: &[u64]) -> String {
    ts.iter()
        .enumerate()
        .map(|(v, t)| format!("T_v{} = {t}", v + 1))
        .collect::<Vec<_>>()
        .join(", ")
}
