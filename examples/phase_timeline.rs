//! Visualizes the protocol's phase structure: messages per round over one
//! run, bucketed into a sparkline. The counting phase shows the pipelined
//! wave burst, the reduce/broadcast interlude is nearly silent, and the
//! aggregation phase mirrors the counting burst in reverse — the timeline
//! the paper's Algorithms 2–3 imply but never plot.
//!
//! Run with: `cargo run --release --example phase_timeline`

use distbc::core::{run_distributed_bc, DistBcConfig, Scheduling};
use distbc::graph::generators;
use std::error::Error;

const BARS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

fn sparkline(series: &[u64], buckets: usize) -> String {
    let chunk = series.len().div_ceil(buckets).max(1);
    let sums: Vec<u64> = series.chunks(chunk).map(|c| c.iter().sum()).collect();
    let max = *sums.iter().max().unwrap_or(&1);
    sums.iter()
        .map(|&s| {
            let idx = if max == 0 {
                0
            } else {
                ((s as f64 / max as f64) * (BARS.len() - 1) as f64).round() as usize
            };
            BARS[idx]
        })
        .collect()
}

fn main() -> Result<(), Box<dyn Error>> {
    let g = generators::erdos_renyi_connected(96, 0.06, 11);
    println!("network: {} nodes, {} edges\n", g.n(), g.m());

    for (label, scheduling) in [
        ("provisioned", Scheduling::DfsPipelined),
        ("adaptive   ", Scheduling::Adaptive),
    ] {
        let out = run_distributed_bc(
            &g,
            DistBcConfig {
                scheduling,
                ..DistBcConfig::default()
            },
        )?;
        let series = &out.metrics.per_round_messages;
        println!(
            "{label} ({} rounds, {} messages):",
            out.rounds, out.metrics.total_messages
        );
        println!("  |{}|", sparkline(series, 72));
        // Locate the phases from the data: the longest quiet stretch
        // separates counting from aggregation.
        let peak = *series.iter().max().unwrap_or(&0);
        let busy: Vec<usize> = series
            .iter()
            .enumerate()
            .filter(|(_, &m)| m > peak / 20)
            .map(|(i, _)| i)
            .collect();
        if let (Some(&first), Some(&last)) = (busy.first(), busy.last()) {
            println!("  active rounds {first}..{last}; peak {peak} messages/round\n");
        }
        assert!(out.metrics.congest_compliant());
    }
    println!(
        "the two bursts are the pipelined BFS waves (Algorithm 2) and the reverse\n\
         aggregation schedule (Algorithm 3); the adaptive run removes the idle\n\
         provisioned windows between and after them."
    );
    Ok(())
}
