//! The paper's future-work extension (Section X): betweenness on a
//! *weighted* network via virtual-node subdivision. Each weight-`w` link
//! becomes `w` unit hops; the unweighted distributed algorithm, restricted
//! to real nodes as sources and targets, then computes weighted
//! betweenness exactly (for integer weights).
//!
//! Scenario: a WAN where link weights are latencies; we find which sites
//! carry the most latency-optimal routes.
//!
//! Run with: `cargo run --release --example weighted_network`

use distbc::brandes::weighted::betweenness_weighted_f64;
use distbc::core::{run_distributed_bc_weighted, DistBcConfig};
use distbc::graph::weighted::WeightedGraph;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // A small WAN: two regional rings joined by one fast and one slow
    // cross-link. Weights are latencies (ms).
    let edges = [
        // region A ring: 0-1-2-3-0
        (0, 1, 2),
        (1, 2, 2),
        (2, 3, 2),
        (3, 0, 2),
        // region B ring: 4-5-6-7-4
        (4, 5, 2),
        (5, 6, 2),
        (6, 7, 2),
        (7, 4, 2),
        // cross-links: fast 1–4, slow 3–6
        (1, 4, 3),
        (3, 6, 9),
    ];
    let wg = WeightedGraph::from_edges(8, edges)?;
    println!(
        "WAN: {} sites, {} links, total latency weight {}",
        wg.n(),
        wg.m(),
        wg.total_weight()
    );

    let out = run_distributed_bc_weighted(&wg, DistBcConfig::default())?;
    println!(
        "simulated as {} unit-latency hops; {} rounds; weighted diameter = {} ms",
        out.simulated_n, out.rounds, out.diameter
    );

    let oracle = betweenness_weighted_f64(&wg);
    println!("\nsite | distributed weighted BC | Dijkstra–Brandes oracle");
    for (v, (mine, theirs)) in out.betweenness.iter().zip(&oracle).enumerate() {
        println!("{v:>4} | {mine:>22.3} | {theirs:>22.3}");
        assert!((mine - theirs).abs() < 1e-3 * (1.0 + theirs));
    }

    // The fast cross-link endpoints dominate: almost all inter-region
    // routes use 1–4.
    let top = (0..wg.n())
        .max_by(|&a, &b| out.betweenness[a].total_cmp(&out.betweenness[b]))
        .expect("non-empty");
    println!("\nbusiest site: {top} (endpoint of the fast cross-link)");
    assert!(top == 1 || top == 4);
    Ok(())
}
