//! The sampling/exactness trade-off: the paper's algorithm is exact with
//! `N` sources; the related-work approximations (Brandes–Pich; Holzer's
//! thesis sketch for CONGEST) sample `k` sources and extrapolate. Here the
//! same protocol runs both ways and we watch traffic fall while estimates
//! stay useful.
//!
//! Run with: `cargo run --release --example sampling_tradeoff`

use distbc::brandes::betweenness_f64;
use distbc::core::{run_distributed_bc, DistBcConfig, SourceSelection};
use distbc::graph::generators;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let n = 128;
    let g = generators::barabasi_albert(n, 3, 17);
    let exact = betweenness_f64(&g);
    let exact_top = (0..n)
        .max_by(|&a, &b| exact[a].total_cmp(&exact[b]))
        .expect("non-empty");

    let full = run_distributed_bc(&g, DistBcConfig::default())?;
    println!(
        "exact distributed run (k = N = {n}): {} rounds, {:.0} kbit",
        full.rounds,
        full.metrics.total_bits as f64 / 1000.0
    );
    println!("\n   k | traffic | top node (exact: {exact_top}) | rel err at that node");
    for k in [8, 16, 32, 64, 128] {
        let out = run_distributed_bc(
            &g,
            DistBcConfig {
                sources: SourceSelection::Sample { k, seed: 9 },
                ..DistBcConfig::default()
            },
        )?;
        let est_top = (0..n)
            .max_by(|&a, &b| out.betweenness[a].total_cmp(&out.betweenness[b]))
            .expect("non-empty");
        let rel = (out.betweenness[exact_top] - exact[exact_top]).abs() / exact[exact_top];
        println!(
            "{k:>4} | {:>6.1}% | {est_top:>24} | {rel:>19.3}",
            100.0 * out.metrics.total_bits as f64 / full.metrics.total_bits as f64,
        );
        assert!(out.metrics.congest_compliant());
    }
    println!(
        "\nwith k = N the estimator coincides with the paper's exact algorithm; \
         small k trades accuracy for a proportional traffic cut"
    );
    Ok(())
}
