//! Runs the paper's betweenness protocol on an *asynchronous* network.
//!
//! The paper's model (Section III-A) assumes globally synchronized rounds.
//! Here the exact same protocol — not a line changed — runs over an
//! event-driven network with randomized FIFO link delays, wrapped in the
//! classic α-synchronizer (Peleg's book, the paper's reference [14]), and
//! produces bit-identical centralities.
//!
//! Run with: `cargo run --release --example asynchronous_network`

use distbc::congest::asynchronous::{run_synchronized, AsyncConfig};
use distbc::core::{run_distributed_bc, AlgoOptions, DistBcConfig, DistBcNode};
use distbc::graph::generators;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let g = generators::watts_strogatz(40, 4, 0.15, 3);
    let (g, _) = distbc::graph::algo::largest_component(&g);
    let n = g.n();
    println!("small-world network: {} nodes, {} edges", n, g.m());

    // Reference: the synchronous simulation.
    let sync = run_distributed_bc(&g, DistBcConfig::default())?;
    println!(
        "synchronous engine: {} rounds, {} messages",
        sync.rounds, sync.metrics.total_messages
    );

    // Asynchronous: random link delays up to 8 time units, α-synchronizer.
    let opts = AlgoOptions::for_graph_size(n);
    for max_delay in [2u64, 8, 32] {
        let (nodes, report) = run_synchronized(
            &g,
            AsyncConfig { max_delay, seed: 7 },
            sync.rounds + 1,
            |v, _| DistBcNode::new(n, v, opts.clone()),
        );
        let max_diff = nodes
            .iter()
            .enumerate()
            .map(|(v, node)| (node.betweenness() - sync.betweenness[v]).abs())
            .fold(0.0f64, f64::max);
        println!(
            "async (delay ≤ {max_delay:>2}): virtual time {:>6}, {} payload + {} control \
             messages, max |Δ betweenness| = {max_diff}",
            report.virtual_time, report.payload_messages, report.control_messages
        );
        assert_eq!(max_diff, 0.0, "synchronizer must be transparent");
    }
    println!("\nidentical results under every delay distribution — the α-synchronizer");
    println!("removes the synchrony assumption at a constant-factor time cost.");
    Ok(())
}
