//! Demonstrates the paper's Section IX lower-bound machinery: the Figure 2
//! diameter gadget and Figure 3 betweenness gadget each encode a two-party
//! sparse set-disjointness instance, and the measured communication of the
//! real distributed algorithm across the gadget's `(m+1)`-edge cut is
//! compared with the `Ω(n log n)` information bound.
//!
//! Run with: `cargo run --release --example lower_bound_demo`

use distbc::brandes::betweenness_f64;
use distbc::graph::algo;
use distbc::lowerbound::cutflow::measure_bc_gadget;
use distbc::lowerbound::disjoint::{random_instance, universe_size};
use distbc::lowerbound::{bc_gadget, diameter_gadget};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let n = 8;
    let m = universe_size(n);
    println!("disjointness instances: n = {n} subsets of size {m}/2 from a universe of {m}\n");

    // --- Figure 2: diameter dichotomy (Lemma 8). ---
    for intersecting in [false, true] {
        let inst = random_instance(n, m, intersecting, 11);
        let g = diameter_gadget(9, &inst);
        let d = algo::diameter(&g.graph);
        println!(
            "diameter gadget (x = 9, families {}): N = {:>4} nodes, diameter = {d} {}",
            if intersecting {
                "intersect"
            } else {
                "disjoint "
            },
            g.graph.n(),
            if d == 9 { "(= x)" } else { "(= x + 2)" },
        );
        assert_eq!(d, if intersecting { 11 } else { 9 });
    }

    // --- Figure 3: betweenness dichotomy (Lemma 9). ---
    let inst = random_instance(n, m, true, 23);
    let g = bc_gadget(&inst);
    let cb = betweenness_f64(&g.graph);
    println!("\nbc gadget: N = {} nodes; C_B(F_i) probes:", g.graph.n());
    for (i, &fi) in g.f.iter().enumerate() {
        let present = inst.y.sets.contains(&inst.x.sets[i]);
        println!(
            "  F_{i}: C_B = {:.1}  (X_{i} {} Y)",
            cb[fi as usize],
            if present { "∈" } else { "∉" }
        );
        assert_eq!(cb[fi as usize], if present { 1.5 } else { 1.0 });
    }
    println!("  → any 0.499-relative-error BC algorithm decides disjointness (Theorem 6)");

    // --- Cut-flow measurement (Theorems 5–6 made concrete). ---
    let (gadget, report) = measure_bc_gadget(&inst)?;
    println!(
        "\nrunning the paper's distributed BC on the gadget ({} nodes, cut = {} edges):",
        gadget.graph.n(),
        report.cut_edges
    );
    println!(
        "  measured: {} rounds, {} bits across the cut ({} messages)",
        report.rounds, report.cut_bits, report.cut_messages
    );
    println!(
        "  bounds:   ≥ {:.0} bits must cross (n·log n), ≥ {:.1} rounds (N/log N)",
        report.disjointness_bits, report.round_lower_bound
    );
    assert!(report.cut_bits as f64 >= report.disjointness_bits);
    assert!(report.rounds as f64 >= report.round_lower_bound);
    Ok(())
}
