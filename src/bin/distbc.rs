//! `distbc` — command-line betweenness centrality via the distributed
//! algorithm or the centralized baselines.
//!
//! ```text
//! distbc info       --input graph.txt
//! distbc centrality --input graph.txt [--algorithm distributed|brandes|exact|naive|sampled:K]
//!                   [--stress] [--top K] [--csv] [--mantissa-bits L] [--sequential | --adaptive]
//! distbc centrality --generate er:100:0.05:7
//! distbc gadget     --kind diameter|bc --n 6 [--x 10] [--planted]
//! ```
//!
//! Graph files use the edge-list format of `bc_graph::io` (optional
//! `n <N>` header, one `u v` pair per line, `#` comments). Generator specs
//! are `family:args`, e.g. `path:50`, `er:100:0.05:7` (n:p:seed),
//! `ba:200:3:1` (n:m:seed), `grid:6:8`, `karate`, `florentine`.

use distbc::brandes;
use distbc::congest::trace::{self, check, stats, JsonlSink, RingSink, TraceSink};
use distbc::congest::wire::fnv1a64;
use distbc::congest::{Counter, Enforcement, FaultPlan, PhaseStat, ProfileReport, Telemetry};
use distbc::core::{
    auto_threads, run_distributed_bc, run_distributed_bc_profiled, run_distributed_bc_traced,
    run_distributed_bc_traced_profiled, run_leader, serve_shard, DistBcConfig, DistBcResult,
    Estimator, PartitionStrategy, Scheduling, SourceSelection, AUTO_THREADS_MIN_NODES,
};
use distbc::graph::{algo, datasets, generators, io, Graph};
use distbc::lowerbound::disjoint::{random_instance, universe_size};
use distbc::numeric::{FpParams, Rounding};
use distbc::serve::{
    FullRunOutput, IncrementalEngine, QueryClient, QueryRequest, QueryResponse, RecomputeEngine,
    Server, ServerConfig,
};
use std::error::Error;
use std::io::IsTerminal;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Parsed command line. One value exists per process invocation, so the
/// size skew between `Centrality` and the small variants is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
enum Command {
    Info {
        source: GraphSource,
    },
    Centrality {
        source: GraphSource,
        algorithm: Algorithm,
        sample_seed: u64,
        estimator: Estimator,
        stress: bool,
        top: Option<usize>,
        csv: bool,
        mantissa_bits: Option<u32>,
        scheduling: Scheduling,
        trace: Option<String>,
        metrics: bool,
        profile: bool,
        json: bool,
        threads: ThreadSpec,
        partition: PartitionStrategy,
        skip_idle: bool,
        faults: Option<FaultPlan>,
        reliable: bool,
        best_effort: bool,
        perfetto: Option<String>,
        watch: bool,
        postmortem: Option<String>,
        no_telemetry: bool,
        connect: Option<Vec<String>>,
    },
    ServeShard {
        listen: String,
    },
    Serve {
        listen: String,
        source: GraphSource,
        algorithm: Algorithm,
        sample_seed: u64,
        estimator: Estimator,
        threads: ThreadSpec,
        connect: Option<Vec<String>>,
        postmortem: Option<String>,
        no_telemetry: bool,
        cache: Option<usize>,
    },
    Query {
        connect: String,
        requests: Vec<QueryRequest>,
        csv: bool,
    },
    Gadget {
        kind: GadgetKind,
        n: usize,
        x: u32,
        planted: bool,
    },
    CheckTrace {
        file: String,
    },
    TraceStats {
        file: String,
        csv: bool,
        json: bool,
        top: usize,
    },
    Help,
}

#[derive(Debug, Clone, PartialEq)]
enum GraphSource {
    File(String),
    Generate(String),
}

/// `--threads` argument: a fixed worker count, or `auto` (resolved from
/// the node count after the graph is loaded).
#[derive(Debug, Clone, Copy, PartialEq)]
enum ThreadSpec {
    Fixed(usize),
    Auto,
}

#[derive(Debug, Clone, PartialEq)]
enum Algorithm {
    Distributed,
    Brandes,
    Exact,
    Naive,
    Sampled(usize),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum GadgetKind {
    Diameter,
    Bc,
}

const USAGE: &str = "usage:
  distbc info        --input FILE | --generate SPEC
  distbc centrality  --input FILE | --generate SPEC
                     [--algorithm distributed|brandes|exact|naive|sampled:K]
                     [--sample-seed N] [--estimator scaled|jiyan]
                     [--stress] [--top K] [--csv] [--mantissa-bits L]
                     [--sequential | --adaptive] [--threads N|auto]
                     [--partition contiguous|degree|schedule] [--no-idle-skip]
                     [--trace FILE] [--metrics] [--profile [--json]]
                     [--faults PLAN [--fault-seed N]] [--reliable] [--best-effort]
                     [--perfetto FILE] [--watch] [--postmortem FILE] [--no-telemetry]
                     [--connect ADDR,ADDR,... [--shards K]]
  distbc serve-shard --listen tcp:HOST:PORT|unix:PATH
  distbc serve       --listen tcp:HOST:PORT|unix:PATH (--input FILE | --generate SPEC)
                     [--algorithm distributed|brandes|sampled:K] [--sample-seed N]
                     [--estimator scaled|jiyan]
                     [--threads N|auto] [--connect ADDR,ADDR,...] [--cache N]
                     [--postmortem FILE] [--no-telemetry]
  distbc query       --connect ADDR [--top K] [--node V] [--percentile P] [--meta]
                     [--add-edge U:V] [--remove-edge U:V] [--flush] [--csv]
  distbc gadget      --kind diameter|bc --n N [--x X] [--planted]
  distbc check-trace FILE
  distbc trace-stats FILE [--csv | --json] [--top K]

generator SPECs: path:N  cycle:N  star:N  grid:R:C  er:N:P:SEED  ba:N:M:SEED
                 ws:N:K:BETA:SEED  tree:N:SEED  barbell:K:BRIDGE  karate  florentine  figure1
sampling:        sampled:K runs the pipeline from K pivot sources (1 <= K <= n) and
                 scales estimates by n/K; --estimator jiyan applies the refined
                 finite-sample correction (Ji & Yan 2016) instead of plain scaling
fault PLANs:     comma-separated, e.g. seed=7,drop=0.1,dup=0.05,corrupt=0.01,
                 delay=0.2:3,crash=4@10..20  (crash=V@A.. = crash-stop).
                 --faults needs --reliable (exact results via retransmission) or
                 --best-effort (observe the raw failure; enforcement downgraded)
telemetry:       always on for distributed runs (--no-telemetry to disable).
                 --watch prints a live status line to stderr; --perfetto FILE
                 exports a Chrome/Perfetto timeline (open at ui.perfetto.dev);
                 on failure (or each watch tick) the flight recorder dumps the
                 last rounds + counters to postmortem.json (--postmortem FILE)
multi-process:   start one `distbc serve-shard --listen ADDR` per shard, then
                 run the leader with --connect ADDR,ADDR,... (one address per
                 shard, in shard order). Wire runs are implicitly --reliable;
                 --faults/--trace/--watch/--best-effort stay in-process
serving:         `distbc serve` keeps a centrality snapshot resident and
                 answers `distbc query` batches; every request flag adds one
                 request to a single batch frame, answered in flag order from
                 one snapshot version. add-edge/remove-edge trigger a
                 background recompute (incremental for brandes) that publishes
                 a new snapshot version; flush waits for the queue to drain.
                 SIGINT/SIGTERM drain in-flight batches and exit 0";

fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().peekable();
    let sub = match it.next() {
        None => return Ok(Command::Help),
        Some(s) => s.as_str(),
    };
    let mut source = None;
    let mut algorithm = Algorithm::Distributed;
    let mut stress = false;
    let mut top = None;
    let mut csv = false;
    let mut mantissa_bits = None;
    let mut scheduling = Scheduling::DfsPipelined;
    let mut kind = None;
    let mut n = None;
    let mut x = 8u32;
    let mut planted = false;
    let mut trace = None;
    let mut metrics = false;
    let mut profile = false;
    let mut json = false;
    let mut threads = ThreadSpec::Fixed(0);
    let mut partition = PartitionStrategy::default();
    let mut skip_idle = true;
    let mut faults: Option<FaultPlan> = None;
    let mut fault_seed: Option<u64> = None;
    let mut sample_seed: Option<u64> = None;
    let mut estimator: Option<Estimator> = None;
    let mut reliable = false;
    let mut best_effort = false;
    let mut perfetto = None;
    let mut watch = false;
    let mut postmortem = None;
    let mut no_telemetry = false;
    let mut connect: Option<Vec<String>> = None;
    let mut shards: Option<usize> = None;
    let mut listen: Option<String> = None;
    let mut cache: Option<usize> = None;
    // `query` requests, in flag order (one batch frame carries them all).
    let mut requests: Vec<QueryRequest> = Vec::new();
    let mut positional: Vec<String> = Vec::new();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--input" => source = Some(GraphSource::File(value("--input")?)),
            "--generate" => source = Some(GraphSource::Generate(value("--generate")?)),
            "--algorithm" => {
                let v = value("--algorithm")?;
                algorithm = match v.as_str() {
                    "distributed" => Algorithm::Distributed,
                    "brandes" => Algorithm::Brandes,
                    "exact" => Algorithm::Exact,
                    "naive" => Algorithm::Naive,
                    other => match other.strip_prefix("sampled:") {
                        Some(k) => {
                            let k: usize =
                                k.parse().map_err(|_| format!("bad sample size {k:?}"))?;
                            if k == 0 {
                                return Err("sampled:K needs K >= 1".into());
                            }
                            Algorithm::Sampled(k)
                        }
                        None => return Err(format!("unknown algorithm {other:?}")),
                    },
                };
            }
            "--stress" => stress = true,
            "--csv" => csv = true,
            "--trace" => trace = Some(value("--trace")?),
            "--metrics" => metrics = true,
            "--profile" => profile = true,
            "--json" => json = true,
            "--sequential" => scheduling = Scheduling::Sequential,
            "--adaptive" => scheduling = Scheduling::Adaptive,
            "--threads" => {
                let v = value("--threads")?;
                threads = if v == "auto" {
                    ThreadSpec::Auto
                } else {
                    ThreadSpec::Fixed(v.parse().map_err(|_| "bad --threads value".to_string())?)
                };
            }
            "--partition" => {
                let v = value("--partition")?;
                partition = PartitionStrategy::parse(&v)
                    .ok_or_else(|| format!("unknown --partition {v:?}"))?;
            }
            "--no-idle-skip" => skip_idle = false,
            "--faults" => {
                let spec = value("--faults")?;
                faults = Some(FaultPlan::parse(&spec).map_err(|e| format!("bad --faults: {e}"))?);
            }
            "--fault-seed" => {
                fault_seed = Some(
                    value("--fault-seed")?
                        .parse()
                        .map_err(|_| "bad --fault-seed value".to_string())?,
                )
            }
            "--sample-seed" => {
                sample_seed = Some(
                    value("--sample-seed")?
                        .parse()
                        .map_err(|_| "bad --sample-seed value".to_string())?,
                )
            }
            "--estimator" => {
                let v = value("--estimator")?;
                estimator = Some(match v.as_str() {
                    "scaled" => Estimator::Scaled,
                    "jiyan" => Estimator::JiYan,
                    other => return Err(format!("unknown estimator {other:?} (scaled|jiyan)")),
                });
            }
            "--reliable" => reliable = true,
            "--best-effort" => best_effort = true,
            "--perfetto" => perfetto = Some(value("--perfetto")?),
            "--watch" => watch = true,
            "--postmortem" => postmortem = Some(value("--postmortem")?),
            "--no-telemetry" => no_telemetry = true,
            "--connect" => {
                let v = value("--connect")?;
                let addrs: Vec<String> = v
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
                if addrs.is_empty() {
                    return Err("--connect needs at least one address".into());
                }
                connect = Some(addrs);
            }
            "--shards" => {
                shards = Some(
                    value("--shards")?
                        .parse()
                        .map_err(|_| "bad --shards value".to_string())?,
                )
            }
            "--listen" => listen = Some(value("--listen")?),
            "--planted" => planted = true,
            "--top" => {
                let k: usize = value("--top")?
                    .parse()
                    .map_err(|_| "bad --top value".to_string())?;
                top = Some(k);
                requests.push(QueryRequest::TopK {
                    k: u32::try_from(k).map_err(|_| "bad --top value".to_string())?,
                });
            }
            "--node" => requests.push(QueryRequest::Node {
                v: value("--node")?
                    .parse()
                    .map_err(|_| "bad --node value".to_string())?,
            }),
            "--percentile" => requests.push(QueryRequest::Percentile {
                p: value("--percentile")?
                    .parse()
                    .map_err(|_| "bad --percentile value".to_string())?,
            }),
            "--meta" => requests.push(QueryRequest::Meta),
            "--add-edge" => {
                let (u, v) = parse_edge(&value("--add-edge")?, "--add-edge")?;
                requests.push(QueryRequest::AddEdge { u, v });
            }
            "--remove-edge" => {
                let (u, v) = parse_edge(&value("--remove-edge")?, "--remove-edge")?;
                requests.push(QueryRequest::RemoveEdge { u, v });
            }
            "--flush" => requests.push(QueryRequest::Flush),
            "--cache" => {
                cache = Some(
                    value("--cache")?
                        .parse()
                        .map_err(|_| "bad --cache value".to_string())?,
                )
            }
            "--mantissa-bits" => {
                mantissa_bits = Some(
                    value("--mantissa-bits")?
                        .parse()
                        .map_err(|_| "bad --mantissa-bits value".to_string())?,
                )
            }
            "--kind" => {
                kind = Some(match value("--kind")?.as_str() {
                    "diameter" => GadgetKind::Diameter,
                    "bc" => GadgetKind::Bc,
                    other => return Err(format!("unknown gadget kind {other:?}")),
                })
            }
            "--n" => {
                n = Some(
                    value("--n")?
                        .parse()
                        .map_err(|_| "bad --n value".to_string())?,
                )
            }
            "--x" => {
                x = value("--x")?
                    .parse()
                    .map_err(|_| "bad --x value".to_string())?
            }
            other if !other.starts_with("--") => positional.push(other.to_string()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    // `--top` doubles as a query request; everything else in `requests`
    // is query-only.
    let query_only = requests
        .iter()
        .any(|r| !matches!(r, QueryRequest::TopK { .. }));
    if query_only && sub != "query" {
        return Err(
            "--node/--percentile/--meta/--add-edge/--remove-edge/--flush belong to query".into(),
        );
    }
    if cache.is_some() && sub != "serve" {
        return Err("--cache belongs to serve".into());
    }
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "info" => Ok(Command::Info {
            source: source.ok_or("info needs --input or --generate")?,
        }),
        "centrality" => {
            let distributed = matches!(algorithm, Algorithm::Distributed | Algorithm::Sampled(_));
            if (trace.is_some() || metrics || profile) && !distributed {
                return Err(
                    "--trace/--metrics/--profile require --algorithm distributed or sampled:K"
                        .into(),
                );
            }
            if json && !profile {
                return Err("--json requires --profile (or use trace-stats --json)".into());
            }
            if (faults.is_some() || reliable) && !distributed {
                return Err(
                    "--faults/--reliable require --algorithm distributed or sampled:K".into(),
                );
            }
            if fault_seed.is_some() && faults.is_none() {
                return Err("--fault-seed requires --faults".into());
            }
            if sample_seed.is_some() && !matches!(algorithm, Algorithm::Sampled(_)) {
                return Err("--sample-seed requires --algorithm sampled:K".into());
            }
            if estimator.is_some() && !matches!(algorithm, Algorithm::Sampled(_)) {
                return Err("--estimator requires --algorithm sampled:K".into());
            }
            if estimator == Some(Estimator::JiYan) && stress {
                return Err("--estimator jiyan cannot be combined with --stress \
                            (both extend the aggregation message)"
                    .into());
            }
            if best_effort && faults.is_none() {
                return Err("--best-effort requires --faults".into());
            }
            if faults.is_some() && !reliable && !best_effort {
                return Err(
                    "--faults without --reliable would fail under strict CONGEST \
                            enforcement; add --reliable for exact results over the lossy \
                            network, or --best-effort to observe the raw failure"
                        .into(),
                );
            }
            if let (Some(plan), Some(seed)) = (faults.as_mut(), fault_seed) {
                plan.seed = seed;
            }
            if (perfetto.is_some() || watch || postmortem.is_some()) && !distributed {
                return Err(
                    "--perfetto/--watch/--postmortem require --algorithm distributed or sampled:K"
                        .into(),
                );
            }
            if no_telemetry && (watch || postmortem.is_some()) {
                return Err("--no-telemetry is incompatible with --watch/--postmortem".into());
            }
            if listen.is_some() {
                return Err("--listen belongs to serve-shard; the leader uses --connect".into());
            }
            match &connect {
                None => {
                    if shards.is_some() {
                        return Err("--shards requires --connect".into());
                    }
                }
                Some(addrs) => {
                    if !distributed {
                        return Err(
                            "--connect requires --algorithm distributed or sampled:K".into()
                        );
                    }
                    if let Some(s) = shards {
                        if s != addrs.len() {
                            return Err(format!(
                                "--shards {s} disagrees with the {} --connect addresses",
                                addrs.len()
                            ));
                        }
                    }
                    if faults.is_some() || best_effort {
                        return Err("--faults/--best-effort are in-process fault injection; \
                                    the wire engine takes real faults from the network itself"
                            .into());
                    }
                    if trace.is_some() {
                        return Err("--trace is not supported with --connect".into());
                    }
                    if watch {
                        return Err("--watch is not supported with --connect (telemetry is \
                                    replayed on the leader after the run)"
                            .into());
                    }
                    if metrics && scheduling == Scheduling::Adaptive {
                        return Err("--metrics with --adaptive needs a trace, which --connect \
                                    does not support"
                            .into());
                    }
                }
            }
            Ok(Command::Centrality {
                source: source.ok_or("centrality needs --input or --generate")?,
                algorithm,
                sample_seed: sample_seed.unwrap_or(0),
                estimator: estimator.unwrap_or_default(),
                stress,
                top,
                csv,
                mantissa_bits,
                scheduling,
                trace,
                metrics,
                profile,
                json,
                threads,
                partition,
                skip_idle,
                faults,
                reliable,
                best_effort,
                perfetto,
                watch,
                postmortem,
                no_telemetry,
                connect,
            })
        }
        "serve-shard" => Ok(Command::ServeShard {
            listen: listen.ok_or("serve-shard needs --listen tcp:HOST:PORT or unix:PATH")?,
        }),
        "serve" => {
            match algorithm {
                Algorithm::Distributed | Algorithm::Brandes | Algorithm::Sampled(_) => {}
                _ => {
                    return Err(
                        "serve supports --algorithm distributed, brandes, or sampled:K".into(),
                    )
                }
            }
            if sample_seed.is_some() && !matches!(algorithm, Algorithm::Sampled(_)) {
                return Err("--sample-seed requires --algorithm sampled:K".into());
            }
            if estimator.is_some() && !matches!(algorithm, Algorithm::Sampled(_)) {
                return Err("--estimator requires --algorithm sampled:K".into());
            }
            if cache.is_some() && algorithm != Algorithm::Brandes {
                return Err("--cache requires --algorithm brandes (the incremental engine)".into());
            }
            if connect.is_some() && algorithm == Algorithm::Brandes {
                return Err("--connect requires --algorithm distributed or sampled:K".into());
            }
            if let (Some(s), Some(addrs)) = (shards, &connect) {
                if s != addrs.len() {
                    return Err(format!(
                        "--shards {s} disagrees with the {} --connect addresses",
                        addrs.len()
                    ));
                }
            }
            if shards.is_some() && connect.is_none() {
                return Err("--shards requires --connect".into());
            }
            if no_telemetry && postmortem.is_some() {
                return Err("--no-telemetry is incompatible with --postmortem".into());
            }
            if !requests.is_empty() || top.is_some() {
                return Err("--top and query requests belong to query".into());
            }
            Ok(Command::Serve {
                listen: listen.ok_or("serve needs --listen tcp:HOST:PORT or unix:PATH")?,
                source: source.ok_or("serve needs --input or --generate")?,
                algorithm,
                sample_seed: sample_seed.unwrap_or(0),
                estimator: estimator.unwrap_or_default(),
                threads,
                connect,
                postmortem,
                no_telemetry,
                cache,
            })
        }
        "query" => {
            let connect = connect.ok_or("query needs --connect ADDR")?;
            if connect.len() != 1 {
                return Err("query takes exactly one --connect address".into());
            }
            if requests.is_empty() {
                return Err(
                    "query needs at least one request: --top/--node/--percentile/--meta/\
                     --add-edge/--remove-edge/--flush"
                        .into(),
                );
            }
            Ok(Command::Query {
                connect: connect.into_iter().next().expect("one address"),
                requests,
                csv,
            })
        }
        "gadget" => Ok(Command::Gadget {
            kind: kind.ok_or("gadget needs --kind diameter|bc")?,
            n: n.ok_or("gadget needs --n")?,
            x,
            planted,
        }),
        "check-trace" => Ok(Command::CheckTrace {
            file: positional
                .first()
                .cloned()
                .ok_or("check-trace needs a trace file")?,
        }),
        "trace-stats" => {
            if csv && json {
                return Err("trace-stats takes --csv or --json, not both".into());
            }
            Ok(Command::TraceStats {
                file: positional
                    .first()
                    .cloned()
                    .ok_or("trace-stats needs a trace file")?,
                csv,
                json,
                top: top.unwrap_or(5),
            })
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

/// Parses an `U:V` edge spec for `--add-edge`/`--remove-edge`.
fn parse_edge(spec: &str, flag: &str) -> Result<(u32, u32), String> {
    let bad = || format!("bad {flag} value {spec:?} (expected U:V)");
    let (u, v) = spec.split_once(':').ok_or_else(bad)?;
    Ok((u.parse().map_err(|_| bad())?, v.parse().map_err(|_| bad())?))
}

fn generate(spec: &str) -> Result<Graph, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let num = |i: usize| -> Result<usize, String> {
        parts
            .get(i)
            .ok_or_else(|| format!("{spec:?}: missing argument {i}"))?
            .parse()
            .map_err(|_| format!("{spec:?}: bad integer argument {i}"))
    };
    let float = |i: usize| -> Result<f64, String> {
        parts
            .get(i)
            .ok_or_else(|| format!("{spec:?}: missing argument {i}"))?
            .parse()
            .map_err(|_| format!("{spec:?}: bad float argument {i}"))
    };
    Ok(match parts[0] {
        "path" => generators::path(num(1)?),
        "cycle" => generators::cycle(num(1)?),
        "star" => generators::star(num(1)?),
        "complete" => generators::complete(num(1)?),
        "grid" => generators::grid(num(1)?, num(2)?),
        "er" => generators::erdos_renyi_connected(num(1)?, float(2)?, num(3)? as u64),
        "ba" => generators::barabasi_albert(num(1)?, num(2)?, num(3)? as u64),
        "ws" => {
            let g = generators::watts_strogatz(num(1)?, num(2)?, float(3)?, num(4)? as u64);
            algo::largest_component(&g).0
        }
        "tree" => generators::random_tree(num(1)?, num(2)? as u64),
        "barbell" => generators::barbell(num(1)?, num(2)?),
        "karate" => datasets::karate_club(),
        "florentine" => datasets::florentine_families(),
        "figure1" => generators::paper_figure1(),
        other => return Err(format!("unknown generator family {other:?}")),
    })
}

/// A flag combination that could only be rejected after the graph was
/// loaded (e.g. `sampled:K` with `K > n`). Reported like a parse error:
/// usage text and exit code 2, not the runtime failure exit 1.
#[derive(Debug)]
struct UsageError(String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl Error for UsageError {}

/// `sampled:K` must draw from the loaded graph: `K` is validated against
/// `n` here because parse time has no graph yet.
fn check_sample_size(algorithm: &Algorithm, n: usize) -> Result<(), Box<dyn Error>> {
    if let Algorithm::Sampled(k) = algorithm {
        if *k > n {
            return Err(Box::new(UsageError(format!(
                "sampled:{k} asks for more sources than the graph has nodes (n = {n}); \
                 use --algorithm distributed for an exact run"
            ))));
        }
    }
    Ok(())
}

fn load(source: &GraphSource) -> Result<Graph, Box<dyn Error>> {
    match source {
        GraphSource::File(path) => {
            let text = std::fs::read_to_string(path)?;
            Ok(io::parse_edge_list(&text)?)
        }
        GraphSource::Generate(spec) => Ok(generate(spec)?),
    }
}

fn cmd_info(source: &GraphSource) -> Result<(), Box<dyn Error>> {
    let g = load(source)?;
    let (_, components) = algo::connected_components(&g);
    println!("nodes:      {}", g.n());
    println!("edges:      {}", g.m());
    println!("max degree: {}", g.max_degree());
    println!("components: {components}");
    if components == 1 && g.n() > 0 {
        println!("diameter:   {}", algo::diameter(&g));
    }
    Ok(())
}

/// Prints the per-phase traffic breakdown of a distributed run
/// (`--metrics`), in the human table or `--csv` form. `phases` is either
/// the provisioned [`DistBcResult::phase_stats`] or, in adaptive mode, the
/// windows recovered from recorded phase-entry events.
fn print_phase_metrics(out: &DistBcResult, phases: &[PhaseStat], csv: bool) {
    if phases.is_empty() {
        eprintln!("# --metrics: no phase boundaries available");
        return;
    }
    if csv {
        println!("phase,start,end,rounds,messages,bits,max_message_bits");
        for p in phases {
            println!(
                "{},{},{},{},{},{},{}",
                p.name, p.start, p.end, p.rounds, p.messages, p.bits, p.max_message_bits
            );
        }
        println!(
            "total,0,{},{},{},{},{}",
            out.rounds,
            out.rounds,
            out.metrics.total_messages,
            out.metrics.total_bits,
            out.metrics.max_message_bits
        );
    } else {
        println!(
            "{:<16} {:>14} {:>8} {:>12} {:>14} {:>10}",
            "phase", "span", "rounds", "messages", "bits", "max bits"
        );
        for p in phases {
            println!(
                "{:<16} {:>6}..{:<6} {:>8} {:>12} {:>14} {:>10}",
                p.name, p.start, p.end, p.rounds, p.messages, p.bits, p.max_message_bits
            );
        }
        println!(
            "{:<16} {:>6}..{:<6} {:>8} {:>12} {:>14} {:>10}",
            "total",
            0,
            out.rounds,
            out.rounds,
            out.metrics.total_messages,
            out.metrics.total_bits,
            out.metrics.max_message_bits
        );
    }
}

/// Recovers adaptive-mode phase windows from recorded phase-entry events
/// and slices the run's per-round timelines at those measured boundaries.
fn adaptive_phase_stats(out: &DistBcResult, events: &[trace::TraceEvent]) -> Vec<PhaseStat> {
    match stats::adaptive_phase_bounds(events) {
        Some((counting_start, reduce_start, agg_start)) => vec![
            out.metrics.phase_window("A:tree", 0, counting_start),
            out.metrics
                .phase_window("B:counting", counting_start, reduce_start),
            out.metrics
                .phase_window("C:reduce+bcast", reduce_start, agg_start),
            out.metrics
                .phase_window("D:aggregation", agg_start, out.rounds),
        ],
        None => {
            eprintln!("# --metrics: trace has no complete phase-entry record");
            Vec::new()
        }
    }
}

/// Rounds the flight recorder retains for postmortems.
const FLIGHT_RECORDER_ROUNDS: usize = 64;

/// `--watch` status-line (and postmortem-checkpoint) interval.
const WATCH_INTERVAL: Duration = Duration::from_secs(1);

/// Dumps the flight recorder + counter snapshot to `path`.
fn write_postmortem(tel: &Telemetry, path: &str, reason: &str) {
    match std::fs::write(path, tel.postmortem_json(reason)) {
        Ok(()) => eprintln!("# postmortem written to {path}"),
        Err(e) => eprintln!("# writing postmortem to {path} failed: {e}"),
    }
}

/// `1234567` → `"1.2M"` — compact rates for the watch status line.
fn human(n: u64) -> String {
    match n {
        0..=9_999 => n.to_string(),
        10_000..=9_999_999 => format!("{:.1}k", n as f64 / 1e3),
        _ => format!("{:.1}M", n as f64 / 1e6),
    }
}

/// The `--watch` reporter: a thread printing a status line to stderr every
/// [`WATCH_INTERVAL`] and checkpointing the postmortem file, so a run
/// killed by Ctrl-C (which the CLI cannot trap) still leaves a scene at
/// most one interval old. Stops and joins on drop.
struct WatchThread {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl WatchThread {
    fn spawn(tel: Arc<Telemetry>, checkpoint: String) -> WatchThread {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let handle = std::thread::spawn(move || {
            // On a terminal, rewrite one line in place; when stderr is
            // piped, emit one full line per tick instead.
            let interactive = std::io::stderr().is_terminal();
            let mut last_msgs = 0u64;
            let mut last_tick = Instant::now();
            let mut printed = false;
            while !flag.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(25));
                if last_tick.elapsed() < WATCH_INTERVAL {
                    continue;
                }
                let dt = last_tick.elapsed().as_secs_f64();
                last_tick = Instant::now();
                let snap = tel.snapshot();
                let msgs = snap.get(Counter::Messages);
                let rate = ((msgs - last_msgs) as f64 / dt) as u64;
                last_msgs = msgs;
                let round = tel.round();
                let line = format!(
                    "# watch: round {round}  phase {}  {} msgs ({}/s)  {} retransmits  \
                     {} straggler rounds",
                    tel.phase_label(round),
                    human(msgs),
                    human(rate),
                    human(snap.get(Counter::Retransmits)),
                    human(snap.get(Counter::StragglerRounds)),
                );
                if interactive {
                    eprint!("\r\x1b[2K{line}");
                    printed = true;
                } else {
                    eprintln!("{line}");
                }
                let _ = std::fs::write(&checkpoint, tel.postmortem_json("watch checkpoint"));
            }
            if interactive && printed {
                eprintln!();
            }
        });
        WatchThread {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for WatchThread {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn cmd_centrality(
    source: &GraphSource,
    algorithm: &Algorithm,
    sample_seed: u64,
    estimator: Estimator,
    stress: bool,
    top: Option<usize>,
    csv: bool,
    mantissa_bits: Option<u32>,
    scheduling: Scheduling,
    trace_path: Option<&str>,
    metrics: bool,
    profile: bool,
    json: bool,
    threads: ThreadSpec,
    partition: PartitionStrategy,
    skip_idle: bool,
    faults: Option<&FaultPlan>,
    reliable: bool,
    best_effort: bool,
    perfetto: Option<&str>,
    watch: bool,
    postmortem: Option<&str>,
    no_telemetry: bool,
    connect: Option<&[String]>,
) -> Result<(), Box<dyn Error>> {
    let g = load(source)?;
    check_sample_size(algorithm, g.n())?;
    let threads = match threads {
        ThreadSpec::Fixed(t) => t,
        ThreadSpec::Auto => {
            let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
            let t = auto_threads(g.n());
            eprintln!(
                "# --threads auto: n={} {} {}, {} core{} -> {}",
                g.n(),
                if g.n() < AUTO_THREADS_MIN_NODES {
                    "<"
                } else {
                    ">="
                },
                AUTO_THREADS_MIN_NODES,
                cores,
                if cores == 1 { "" } else { "s" },
                if t > 1 {
                    format!("parallel({t})")
                } else {
                    "serial".to_string()
                }
            );
            t
        }
    };
    let mut stress_vals: Option<Vec<f64>> = None;
    let bc: Vec<f64> = match algorithm {
        Algorithm::Brandes => brandes::betweenness_f64(&g),
        Algorithm::Exact => brandes::betweenness_exact(&g)
            .iter()
            .map(|v| v.to_f64())
            .collect(),
        Algorithm::Naive => brandes::betweenness_naive(&g),
        Algorithm::Distributed | Algorithm::Sampled(_) => {
            // Telemetry is on by default: one shard per worker and a
            // flight recorder for postmortems. Counter-only, so results
            // are bit-identical with or without it. A wire leader keeps
            // one telemetry shard per connected shard process.
            let telemetry_shards = connect.map_or(threads.max(1), <[String]>::len);
            let telemetry = (!no_telemetry)
                .then(|| Arc::new(Telemetry::new(telemetry_shards, FLIGHT_RECORDER_ROUNDS)));
            let postmortem_path = postmortem.unwrap_or("postmortem.json");
            let cfg = DistBcConfig {
                fp: mantissa_bits.map(|l| FpParams::new(l, Rounding::Ceil)),
                scheduling,
                compute_stress: stress,
                sources: match algorithm {
                    Algorithm::Sampled(k) => SourceSelection::Sample {
                        k: *k,
                        seed: sample_seed,
                    },
                    _ => SourceSelection::All,
                },
                estimator,
                threads,
                partition,
                skip_idle,
                faults: faults.cloned(),
                reliable,
                // --best-effort: record CONGEST violations instead of
                // aborting, so a raw faulty run can be observed end to end.
                enforcement: if best_effort {
                    Enforcement::Record
                } else {
                    Enforcement::Strict
                },
                telemetry: telemetry.clone(),
                ..DistBcConfig::default()
            };
            // Adaptive --metrics has no provisioned boundaries; record the
            // phase-entry events (to the requested trace file, or to an
            // in-memory ring when no --trace was given) and measure them.
            let adaptive_metrics = metrics && scheduling == Scheduling::Adaptive;
            let sink: Option<Box<dyn TraceSink>> = match (trace_path, adaptive_metrics) {
                (Some(path), _) => Some(Box::new(JsonlSink::create(path)?)),
                (None, true) => Some(Box::new(RingSink::new(1 << 22))),
                (None, false) => None,
            };
            let mut profile_report: Option<ProfileReport> = None;
            let mut returned_sink: Option<Box<dyn TraceSink>> = None;
            // --perfetto renders from the profiler's round spans, so it
            // turns profiling on internally even without --profile.
            let want_profile = profile || perfetto.is_some();
            let watcher = match (&telemetry, watch) {
                (Some(t), true) => Some(WatchThread::spawn(t.clone(), postmortem_path.to_string())),
                _ => None,
            };
            let run_result: Result<DistBcResult, Box<dyn Error>> = (|| {
                if let Some(addrs) = connect {
                    // Multi-process run: the shard processes execute, the
                    // leader merges. Wire runs are implicitly reliable.
                    let (out, report) = run_leader(&g, &cfg, addrs, want_profile)?;
                    profile_report = report;
                    return Ok(out);
                }
                Ok(match (sink, want_profile) {
                    (Some(sink), true) => {
                        let (out, sink, report) =
                            run_distributed_bc_traced_profiled(&g, cfg, sink)?;
                        profile_report = Some(report);
                        returned_sink = Some(sink);
                        out
                    }
                    (Some(sink), false) => {
                        let (out, sink) = run_distributed_bc_traced(&g, cfg, sink)?;
                        returned_sink = Some(sink);
                        out
                    }
                    (None, true) => {
                        let (out, report) = run_distributed_bc_profiled(&g, cfg)?;
                        profile_report = Some(report);
                        out
                    }
                    (None, false) => run_distributed_bc(&g, cfg)?,
                })
            })();
            drop(watcher);
            let out = match run_result {
                Ok(out) => out,
                Err(e) => {
                    // The run died (NodePanic, RoundLimit, abort, ...):
                    // preserve the scene before reporting the failure.
                    if let Some(t) = &telemetry {
                        write_postmortem(t, postmortem_path, &e.to_string());
                    }
                    return Err(e);
                }
            };
            if watch {
                // The run succeeded; drop the watch thread's in-flight
                // checkpoint so no stale "postmortem" outlives a clean run.
                let _ = std::fs::remove_file(postmortem_path);
            }
            if let (Some(path), Some(report)) = (perfetto, profile_report.as_ref()) {
                std::fs::write(path, report.to_perfetto_json())
                    .map_err(|e| format!("writing perfetto trace to {path}: {e}"))?;
                eprintln!("# perfetto trace written to {path} (open at https://ui.perfetto.dev)");
            }
            if let (Some(path), Some(sink)) = (trace_path, returned_sink.as_mut()) {
                sink.flush()?;
                eprintln!("# trace written to {path}");
            }
            eprintln!(
                "# distributed: {} rounds, {} messages, max {} bits/message, compliant={}",
                out.rounds,
                out.metrics.total_messages,
                out.metrics.max_message_bits,
                out.metrics.congest_compliant()
            );
            if faults.is_some() || reliable || connect.is_some() {
                let m = &out.metrics;
                eprintln!(
                    "# reliability: {} dropped, {} duplicated, {} corrupted, {} delayed; \
                     {} retransmitted, {} deduped",
                    m.faults_dropped,
                    m.faults_duplicated,
                    m.faults_corrupted,
                    m.faults_delayed,
                    m.messages_retransmitted,
                    m.messages_deduped
                );
            }
            if profile {
                if let Some(report) = &profile_report {
                    if json {
                        println!("{}", report.to_json());
                    } else {
                        print!("{report}");
                    }
                }
            }
            if metrics {
                // --metrics replaces the per-node listing with the
                // per-phase traffic table (also the --csv payload).
                let adaptive_windows = if out.phase_stats.is_empty() {
                    let events = match (trace_path, returned_sink.as_mut()) {
                        (Some(path), _) => trace::read_jsonl(path)?,
                        (None, Some(sink)) => sink.drain_events(),
                        (None, None) => Vec::new(),
                    };
                    adaptive_phase_stats(&out, &events)
                } else {
                    Vec::new()
                };
                let phases = if out.phase_stats.is_empty() {
                    &adaptive_windows
                } else {
                    &out.phase_stats
                };
                print_phase_metrics(&out, phases, csv);
                return Ok(());
            }
            if profile && json {
                // --profile --json emits the machine-readable report as
                // the sole stdout payload.
                return Ok(());
            }
            stress_vals = out.stress;
            out.betweenness
        }
    };
    if stress && stress_vals.is_none() {
        stress_vals = Some(brandes::stress_centrality(&g));
    }
    let mut order: Vec<usize> = (0..g.n()).collect();
    order.sort_by(|&a, &b| bc[b].total_cmp(&bc[a]));
    if let Some(k) = top {
        order.truncate(k);
    }
    if csv {
        println!("node,betweenness{}", if stress { ",stress" } else { "" });
        for v in order {
            match &stress_vals {
                Some(s) if stress => println!("{v},{},{}", bc[v], s[v]),
                _ => println!("{v},{}", bc[v]),
            }
        }
    } else {
        println!(
            "{:>8} {:>16}{}",
            "node",
            "betweenness",
            if stress { "          stress" } else { "" }
        );
        for v in order {
            match &stress_vals {
                Some(s) if stress => println!("{v:>8} {:>16.4} {:>15.4}", bc[v], s[v]),
                _ => println!("{v:>8} {:>16.4}", bc[v]),
            }
        }
    }
    Ok(())
}

/// `serve-shard --listen ADDR`: run one shard of a multi-process
/// execution. Blocks until a leader connects, serves exactly one run,
/// and exits — 0 on success, 1 on any failure (after reporting it to
/// the leader so the leader fails too instead of hanging).
fn cmd_serve_shard(listen: &str) -> Result<(), Box<dyn Error>> {
    eprintln!("# serve-shard: listening on {listen}");
    serve_shard(listen)?;
    eprintln!("# serve-shard: run complete");
    Ok(())
}

/// Signal plumbing for `distbc serve`. SIGINT/SIGTERM flip a shared
/// flag that the server's accept loop polls, so shutdown drains
/// in-flight batches and the mutation queue instead of killing the
/// process mid-response. The workspace libraries all
/// `#![forbid(unsafe_code)]`; this module is the binary's single unsafe
/// block.
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, OnceLock};

    static SHUTDOWN: OnceLock<Arc<AtomicBool>> = OnceLock::new();

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store, which is async-signal-safe.
        if let Some(flag) = SHUTDOWN.get() {
            flag.store(true, Ordering::SeqCst);
        }
    }

    /// Installs SIGINT/SIGTERM handlers and returns the flag they flip.
    pub fn install_shutdown_flag() -> Arc<AtomicBool> {
        let flag = Arc::clone(SHUTDOWN.get_or_init(|| Arc::new(AtomicBool::new(false))));
        // SAFETY: libc `signal` with a handler that performs a single
        // async-signal-safe atomic store on a flag initialized above.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
        flag
    }
}

/// `serve`: load a graph, compute the initial snapshot with the chosen
/// engine, and answer `distbc query` batches until SIGINT/SIGTERM.
#[allow(clippy::too_many_arguments)]
fn cmd_serve(
    listen: &str,
    source: &GraphSource,
    algorithm: &Algorithm,
    sample_seed: u64,
    estimator: Estimator,
    threads: ThreadSpec,
    connect: Option<&[String]>,
    postmortem: Option<&str>,
    no_telemetry: bool,
    cache: Option<usize>,
) -> Result<(), Box<dyn Error>> {
    let g = load(source)?;
    check_sample_size(algorithm, g.n())?;
    let threads = match threads {
        ThreadSpec::Fixed(t) => t,
        ThreadSpec::Auto => auto_threads(g.n()),
    };
    // One telemetry shard for the server's own counters; driver engines
    // share the instance (their shard 0 overlays the server's).
    let telemetry_shards = connect.map_or(threads.max(1), <[String]>::len);
    let telemetry =
        (!no_telemetry).then(|| Arc::new(Telemetry::new(telemetry_shards, FLIGHT_RECORDER_ROUNDS)));
    let (engine, algo_label, config_hash) = match algorithm {
        Algorithm::Brandes => {
            // Default cache: every source vector fits (n vectors of n
            // floats) — mutations then replay all unaffected sources.
            let capacity = cache.unwrap_or(g.n());
            let engine = RecomputeEngine::Incremental(IncrementalEngine::new(g, capacity));
            (engine, "brandes".to_string(), fnv1a64(b"brandes"))
        }
        Algorithm::Distributed | Algorithm::Sampled(_) => {
            let cfg = DistBcConfig {
                sources: match algorithm {
                    Algorithm::Sampled(k) => SourceSelection::Sample {
                        k: *k,
                        seed: sample_seed,
                    },
                    _ => SourceSelection::All,
                },
                estimator,
                threads,
                telemetry: telemetry.clone(),
                ..DistBcConfig::default()
            };
            let label = match algorithm {
                Algorithm::Sampled(k) => format!("sampled:{k}"),
                _ => "distributed".to_string(),
            };
            let config_hash = cfg.fingerprint();
            // The shard mesh serves exactly one run per process, so
            // `--connect` backs the *initial* compute only; recomputes
            // run in-process with the same config (the wire engine is
            // bit-identical to the in-process one, so snapshots do not
            // depend on which path produced them).
            let mut wire_addrs = connect.map(<[String]>::to_vec);
            let run = move |g: &Graph| -> Result<FullRunOutput, String> {
                let out = match wire_addrs.take() {
                    Some(addrs) => {
                        let (out, _) =
                            run_leader(g, &cfg, &addrs, false).map_err(|e| e.to_string())?;
                        out
                    }
                    None => run_distributed_bc(g, cfg.clone()).map_err(|e| e.to_string())?,
                };
                Ok(FullRunOutput {
                    scores: out.betweenness,
                    sample_size: out.sample_size,
                    rounds: out.rounds,
                })
            };
            let engine = RecomputeEngine::Full {
                graph: g,
                run: Box::new(run),
            };
            (engine, label, config_hash)
        }
        _ => unreachable!("parse_args rejects other serve algorithms"),
    };
    let shutdown = signals::install_shutdown_flag();
    let server = Server::bind(
        engine,
        ServerConfig {
            listen: listen.to_string(),
            algo: algo_label.clone(),
            config_hash,
            telemetry: telemetry.clone(),
        },
        shutdown,
    )?;
    let snap = server.snapshot();
    // stdout carries exactly one machine-readable line — the dialable
    // address (ephemeral TCP ports resolved) — so scripts and tests can
    // discover where to connect.
    println!("listening on {}", server.addr());
    use std::io::Write as _;
    std::io::stdout().flush()?;
    eprintln!(
        "# serve: {} nodes, algorithm {}, snapshot v{} (graph {:016x}, config {:016x})",
        snap.len(),
        algo_label,
        snap.version,
        snap.graph_hash,
        snap.config_hash
    );
    let stats = server.run()?;
    eprintln!(
        "# serve: shutdown after {} queries in {} batches over {} connections; \
         {} snapshots published, {} malformed frames",
        stats.queries, stats.batches, stats.connections, stats.snapshots_published, stats.malformed
    );
    // Final telemetry checkpoint: the same flight-recorder dump a
    // distributed run leaves on failure, with a clean-shutdown reason.
    if let (Some(t), Some(path)) = (&telemetry, postmortem) {
        write_postmortem(t, path, "serve shutdown (signal)");
    }
    Ok(())
}

/// `query`: one connection, one batch frame carrying every request
/// flag in order, answers printed in the same order.
fn cmd_query(connect: &str, requests: &[QueryRequest], csv: bool) -> Result<(), Box<dyn Error>> {
    let mut client = QueryClient::connect(connect).map_err(|e| e.to_string())?;
    let (graph_hash, config_hash) = {
        let hello = client.server_hello();
        (hello.graph_hash, hello.config_hash)
    };
    eprintln!("# connected to {connect}: graph {graph_hash:016x}, config {config_hash:016x}");
    let responses = client.batch(requests).map_err(|e| e.to_string())?;
    let mut failed = false;
    for resp in &responses {
        print_response(resp, csv, &mut failed);
    }
    client.close();
    if failed {
        return Err("one or more requests failed".into());
    }
    Ok(())
}

/// Prints one response. `--csv` emits full-precision floats (`{}`
/// round-trips f64 exactly), so `query --top N --csv` diffs
/// bit-identically against `centrality --csv`.
fn print_response(resp: &QueryResponse, csv: bool, failed: &mut bool) {
    match resp {
        QueryResponse::Ranked { version, entries } => {
            if csv {
                println!("node,betweenness");
                for (v, score) in entries {
                    println!("{v},{score}");
                }
            } else {
                eprintln!("# snapshot v{version}");
                println!("{:>8} {:>16}", "node", "betweenness");
                for (v, score) in entries {
                    println!("{v:>8} {score:>16.4}");
                }
            }
        }
        QueryResponse::Score {
            version,
            node,
            score,
        } => {
            if csv {
                println!("{node},{score}");
            } else {
                println!("node {node}: betweenness {score:.4} (snapshot v{version})");
            }
        }
        QueryResponse::Value { version, value } => {
            if csv {
                println!("{value}");
            } else {
                println!("percentile value {value:.4} (snapshot v{version})");
            }
        }
        QueryResponse::Meta {
            version,
            graph_hash,
            config_hash,
            algo,
            n,
            sample_size,
            rounds,
            pending,
        } => {
            if csv {
                println!("version,graph_hash,config_hash,algo,n,sample_size,rounds,pending");
                println!(
                    "{version},{graph_hash:016x},{config_hash:016x},{algo},{n},{sample_size},{rounds},{pending}"
                );
            } else {
                println!("snapshot:    v{version}");
                println!("graph hash:  {graph_hash:016x}");
                println!("config hash: {config_hash:016x}");
                println!("algorithm:   {algo}");
                println!("nodes:       {n}");
                println!("sources:     {sample_size}");
                println!("rounds:      {rounds}");
                println!("pending:     {pending}");
            }
        }
        QueryResponse::MutationQueued { seq } => println!("queued mutation #{seq}"),
        QueryResponse::Flushed { version } => println!("flushed; snapshot now v{version}"),
        QueryResponse::Failed { reason } => {
            *failed = true;
            eprintln!("error: {reason}");
        }
    }
}

fn cmd_gadget(kind: GadgetKind, n: usize, x: u32, planted: bool) -> Result<(), Box<dyn Error>> {
    let inst = random_instance(n, universe_size(n), planted, 1);
    match kind {
        GadgetKind::Diameter => {
            let g = distbc::lowerbound::diameter_gadget(x, &inst);
            println!(
                "# Figure 2 gadget: n={n}, x={x}, planted={planted}; diameter = {} (expected {})",
                algo::diameter(&g.graph),
                if planted { x + 2 } else { x }
            );
            print!("{}", io::to_edge_list(&g.graph));
        }
        GadgetKind::Bc => {
            let g = distbc::lowerbound::bc_gadget(&inst);
            let cb = brandes::betweenness_f64(&g.graph);
            println!("# Figure 3 gadget: n={n}, planted={planted}");
            for (i, &fi) in g.f.iter().enumerate() {
                println!("# C_B(F_{i}) = {}", cb[fi as usize]);
            }
            print!("{}", io::to_edge_list(&g.graph));
        }
    }
    Ok(())
}

/// `check-trace FILE`: re-validate the paper's invariants offline against
/// a recorded JSONL trace. Exits nonzero if any check fails.
fn cmd_check_trace(file: &str) -> Result<(), Box<dyn Error>> {
    let events = trace::read_jsonl(file)?;
    let report = check::check(&events);
    print!("{report}");
    if report.ok() {
        Ok(())
    } else {
        Err(format!("trace {file} failed validation").into())
    }
}

/// `trace-stats FILE`: congestion/latency analytics over a recorded JSONL
/// trace — the observed wave schedule with per-source Lemma-4 slack, wave
/// latency vs eccentricity, edge/round congestion hot spots, and the DFS
/// token's critical path.
fn cmd_trace_stats(file: &str, csv: bool, json: bool, top: usize) -> Result<(), Box<dyn Error>> {
    let events = trace::read_jsonl(file)?;
    let s = stats::analyze(&events, top);
    if csv {
        print!("{}", s.to_csv());
    } else if json {
        println!("{}", s.to_json());
    } else {
        print!("{s}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            // Usage and flag-combination errors exit 2; runtime failures
            // (I/O, protocol errors) exit 1.
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match &cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Info { source } => cmd_info(source),
        Command::Centrality {
            source,
            algorithm,
            sample_seed,
            estimator,
            stress,
            top,
            csv,
            mantissa_bits,
            scheduling,
            trace,
            metrics,
            profile,
            json,
            threads,
            partition,
            skip_idle,
            faults,
            reliable,
            best_effort,
            perfetto,
            watch,
            postmortem,
            no_telemetry,
            connect,
        } => cmd_centrality(
            source,
            algorithm,
            *sample_seed,
            *estimator,
            *stress,
            *top,
            *csv,
            *mantissa_bits,
            *scheduling,
            trace.as_deref(),
            *metrics,
            *profile,
            *json,
            *threads,
            *partition,
            *skip_idle,
            faults.as_ref(),
            *reliable,
            *best_effort,
            perfetto.as_deref(),
            *watch,
            postmortem.as_deref(),
            *no_telemetry,
            connect.as_deref(),
        ),
        Command::ServeShard { listen } => cmd_serve_shard(listen),
        Command::Serve {
            listen,
            source,
            algorithm,
            sample_seed,
            estimator,
            threads,
            connect,
            postmortem,
            no_telemetry,
            cache,
        } => cmd_serve(
            listen,
            source,
            algorithm,
            *sample_seed,
            *estimator,
            *threads,
            connect.as_deref(),
            postmortem.as_deref(),
            *no_telemetry,
            *cache,
        ),
        Command::Query {
            connect,
            requests,
            csv,
        } => cmd_query(connect, requests, *csv),
        Command::Gadget {
            kind,
            n,
            x,
            planted,
        } => cmd_gadget(*kind, *n, *x, *planted),
        Command::CheckTrace { file } => cmd_check_trace(file),
        Command::TraceStats {
            file,
            csv,
            json,
            top,
        } => cmd_trace_stats(file, *csv, *json, *top),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) if e.is::<UsageError>() => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<Command, String> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_args(&v)
    }

    #[test]
    fn parses_info() {
        assert_eq!(
            p(&["info", "--input", "g.txt"]).unwrap(),
            Command::Info {
                source: GraphSource::File("g.txt".into())
            }
        );
    }

    #[test]
    fn parses_centrality_with_options() {
        let c = p(&[
            "centrality",
            "--generate",
            "er:50:0.1:3",
            "--algorithm",
            "sampled:10",
            "--stress",
            "--top",
            "5",
            "--csv",
            "--mantissa-bits",
            "20",
            "--adaptive",
            "--threads",
            "4",
            "--no-idle-skip",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Centrality {
                source: GraphSource::Generate("er:50:0.1:3".into()),
                algorithm: Algorithm::Sampled(10),
                sample_seed: 0,
                estimator: Estimator::Scaled,
                stress: true,
                top: Some(5),
                csv: true,
                mantissa_bits: Some(20),
                scheduling: Scheduling::Adaptive,
                trace: None,
                metrics: false,
                profile: false,
                json: false,
                threads: ThreadSpec::Fixed(4),
                partition: PartitionStrategy::Contiguous,
                skip_idle: false,
                faults: None,
                reliable: false,
                best_effort: false,
                perfetto: None,
                watch: false,
                postmortem: None,
                no_telemetry: false,
                connect: None,
            }
        );
    }

    #[test]
    fn parses_serve_shard() {
        assert_eq!(
            p(&["serve-shard", "--listen", "tcp:127.0.0.1:4100"]).unwrap(),
            Command::ServeShard {
                listen: "tcp:127.0.0.1:4100".into()
            }
        );
        assert_eq!(
            p(&["serve-shard", "--listen", "unix:/tmp/s0.sock"]).unwrap(),
            Command::ServeShard {
                listen: "unix:/tmp/s0.sock".into()
            }
        );
        assert!(p(&["serve-shard"]).is_err());
    }

    #[test]
    fn parses_serve() {
        assert_eq!(
            p(&[
                "serve",
                "--listen",
                "tcp:127.0.0.1:0",
                "--generate",
                "er:40:0.1:7",
                "--algorithm",
                "brandes",
                "--cache",
                "16",
            ])
            .unwrap(),
            Command::Serve {
                listen: "tcp:127.0.0.1:0".into(),
                source: GraphSource::Generate("er:40:0.1:7".into()),
                algorithm: Algorithm::Brandes,
                sample_seed: 0,
                estimator: Estimator::Scaled,
                threads: ThreadSpec::Fixed(0),
                connect: None,
                postmortem: None,
                no_telemetry: false,
                cache: Some(16),
            }
        );
        // The shard mesh can back the initial driver compute.
        match p(&[
            "serve",
            "--listen",
            "unix:/tmp/q.sock",
            "--generate",
            "path:20",
            "--connect",
            "tcp:a:1,tcp:b:2",
        ])
        .unwrap()
        {
            Command::Serve {
                algorithm, connect, ..
            } => {
                assert_eq!(algorithm, Algorithm::Distributed);
                assert_eq!(connect.map(|a| a.len()), Some(2));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn serve_rejects_bad_combinations() {
        let base = [
            "serve",
            "--listen",
            "tcp:127.0.0.1:0",
            "--generate",
            "path:8",
        ];
        let with = |extra: &[&str]| {
            let mut v: Vec<&str> = base.to_vec();
            v.extend_from_slice(extra);
            p(&v)
        };
        assert!(with(&[]).is_ok());
        assert!(p(&["serve", "--listen", "tcp:a:1"]).is_err()); // no graph
        assert!(p(&["serve", "--generate", "path:8"]).is_err()); // no listen
                                                                 // Exact/naive engines have no serving story.
        assert!(with(&["--algorithm", "exact"]).is_err());
        assert!(with(&["--algorithm", "naive"]).is_err());
        // The cache belongs to the incremental (brandes) engine.
        assert!(with(&["--cache", "8"]).is_err());
        assert!(with(&["--algorithm", "brandes", "--cache", "8"]).is_ok());
        // --connect drives the distributed engine only.
        assert!(with(&["--algorithm", "brandes", "--connect", "tcp:a:1"]).is_err());
        // Query flags are the client's side of the protocol.
        assert!(with(&["--top", "5"]).is_err());
        assert!(with(&["--meta"]).is_err());
        assert!(with(&["--sample-seed", "3"]).is_err());
        assert!(with(&["--algorithm", "sampled:4", "--sample-seed", "3"]).is_ok());
        assert!(with(&["--no-telemetry", "--postmortem", "pm.json"]).is_err());
    }

    #[test]
    fn parses_query_requests_in_flag_order() {
        assert_eq!(
            p(&[
                "query",
                "--connect",
                "tcp:127.0.0.1:4200",
                "--meta",
                "--top",
                "3",
                "--add-edge",
                "0:5",
                "--flush",
                "--node",
                "5",
                "--percentile",
                "99.5",
                "--remove-edge",
                "0:5",
                "--csv",
            ])
            .unwrap(),
            Command::Query {
                connect: "tcp:127.0.0.1:4200".into(),
                requests: vec![
                    QueryRequest::Meta,
                    QueryRequest::TopK { k: 3 },
                    QueryRequest::AddEdge { u: 0, v: 5 },
                    QueryRequest::Flush,
                    QueryRequest::Node { v: 5 },
                    QueryRequest::Percentile { p: 99.5 },
                    QueryRequest::RemoveEdge { u: 0, v: 5 },
                ],
                csv: true,
            }
        );
    }

    #[test]
    fn query_rejects_bad_combinations() {
        // No connect address, no batch.
        assert!(p(&["query", "--top", "5"]).is_err());
        // Exactly one server.
        assert!(p(&["query", "--connect", "tcp:a:1,tcp:b:2", "--top", "5"]).is_err());
        // An empty batch is a usage error, not a no-op round trip.
        assert!(p(&["query", "--connect", "tcp:a:1"]).is_err());
        // Edge specs are U:V.
        assert!(p(&["query", "--connect", "tcp:a:1", "--add-edge", "5"]).is_err());
        assert!(p(&["query", "--connect", "tcp:a:1", "--add-edge", "a:b"]).is_err());
        // Query-only flags stay out of the other subcommands.
        assert!(p(&["centrality", "--generate", "path:8", "--meta"]).is_err());
        assert!(p(&["centrality", "--generate", "path:8", "--flush"]).is_err());
        assert!(p(&["info", "--input", "g.txt", "--node", "3"]).is_err());
    }

    #[test]
    fn parses_connect_and_shards() {
        let c = p(&[
            "centrality",
            "--generate",
            "er:30:0.1:1",
            "--connect",
            "tcp:127.0.0.1:4100, tcp:127.0.0.1:4101",
            "--shards",
            "2",
        ])
        .unwrap();
        match c {
            Command::Centrality { connect, .. } => {
                assert_eq!(
                    connect.as_deref(),
                    Some(
                        &[
                            "tcp:127.0.0.1:4100".to_string(),
                            "tcp:127.0.0.1:4101".into()
                        ][..]
                    )
                );
            }
            other => panic!("unexpected parse: {other:?}"),
        }
        // --shards is optional but must agree with the address count.
        assert!(p(&[
            "centrality",
            "--generate",
            "path:8",
            "--connect",
            "tcp:a:1,tcp:b:2",
            "--shards",
            "3",
        ])
        .is_err());
        assert!(p(&["centrality", "--generate", "path:8", "--shards", "2"]).is_err());
        assert!(p(&["centrality", "--generate", "path:8", "--connect", " , "]).is_err());
    }

    #[test]
    fn connect_rejects_in_process_features() {
        let base = ["centrality", "--generate", "path:8", "--connect", "tcp:a:1"];
        let with = |extra: &[&str]| {
            let mut v: Vec<&str> = base.to_vec();
            v.extend_from_slice(extra);
            p(&v)
        };
        assert!(with(&[]).is_ok());
        assert!(with(&["--faults", "drop=0.1", "--reliable"]).is_err());
        assert!(with(&["--trace", "t.jsonl"]).is_err());
        assert!(with(&["--watch"]).is_err());
        assert!(with(&["--adaptive", "--metrics"]).is_err());
        // Wire runs are implicitly reliable; saying so is harmless.
        assert!(with(&["--reliable"]).is_ok());
        // The leader still takes result/telemetry formatting flags.
        assert!(with(&["--profile", "--json"]).is_ok());
        assert!(with(&["--perfetto", "t.json", "--postmortem", "pm.json"]).is_ok());
        // --connect drives the distributed engine only.
        assert!(with(&["--algorithm", "brandes"]).is_err());
        // --listen is the serve-shard side of the pair.
        assert!(with(&["--listen", "tcp:b:2"]).is_err());
    }

    #[test]
    fn parses_sample_seed() {
        let c = p(&[
            "centrality",
            "--generate",
            "er:50:0.1:3",
            "--algorithm",
            "sampled:10",
            "--sample-seed",
            "42",
        ])
        .unwrap();
        match c {
            Command::Centrality {
                algorithm,
                sample_seed,
                ..
            } => {
                assert_eq!(algorithm, Algorithm::Sampled(10));
                assert_eq!(sample_seed, 42);
            }
            other => panic!("unexpected parse: {other:?}"),
        }
        // Default seed is 0 (the historical hardcoded value).
        match p(&[
            "centrality",
            "--generate",
            "path:8",
            "--algorithm",
            "sampled:4",
        ])
        .unwrap()
        {
            Command::Centrality { sample_seed, .. } => assert_eq!(sample_seed, 0),
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn rejects_sample_seed_without_sampling() {
        // Seeding source sampling is meaningless for the other algorithms.
        for algo in ["distributed", "brandes", "exact", "naive"] {
            let err = p(&[
                "centrality",
                "--generate",
                "path:8",
                "--algorithm",
                algo,
                "--sample-seed",
                "7",
            ])
            .unwrap_err();
            assert!(err.contains("--sample-seed requires"), "{algo}: {err}");
        }
        // No --algorithm at all defaults to distributed: still rejected.
        assert!(p(&["centrality", "--generate", "path:8", "--sample-seed", "7"]).is_err());
        assert!(p(&[
            "centrality",
            "--generate",
            "path:8",
            "--algorithm",
            "sampled:4",
            "--sample-seed",
            "nope",
        ])
        .is_err());
    }

    #[test]
    fn rejects_empty_sample() {
        let err = p(&[
            "centrality",
            "--generate",
            "path:8",
            "--algorithm",
            "sampled:0",
        ])
        .unwrap_err();
        assert!(err.contains("K >= 1"), "{err}");
        assert!(p(&["serve", "--listen", "tcp:a:1", "--generate", "path:8"]).is_ok());
        let err = p(&[
            "serve",
            "--listen",
            "tcp:a:1",
            "--generate",
            "path:8",
            "--algorithm",
            "sampled:0",
        ])
        .unwrap_err();
        assert!(err.contains("K >= 1"), "{err}");
    }

    #[test]
    fn parses_estimator() {
        let base = ["centrality", "--generate", "path:8", "--algorithm"];
        let with = |algo: &str, rest: &[&str]| {
            let mut v: Vec<&str> = base.to_vec();
            v.push(algo);
            v.extend_from_slice(rest);
            p(&v)
        };
        match with("sampled:4", &["--estimator", "jiyan"]).unwrap() {
            Command::Centrality { estimator, .. } => assert_eq!(estimator, Estimator::JiYan),
            other => panic!("unexpected parse: {other:?}"),
        }
        match with("sampled:4", &["--estimator", "scaled"]).unwrap() {
            Command::Centrality { estimator, .. } => assert_eq!(estimator, Estimator::Scaled),
            other => panic!("unexpected parse: {other:?}"),
        }
        // Default is plain n/k scaling.
        match with("sampled:4", &[]).unwrap() {
            Command::Centrality { estimator, .. } => assert_eq!(estimator, Estimator::Scaled),
            other => panic!("unexpected parse: {other:?}"),
        }
        // The estimator reshapes sampled estimates only.
        for algo in ["distributed", "brandes", "exact", "naive"] {
            let err = with(algo, &["--estimator", "jiyan"]).unwrap_err();
            assert!(err.contains("--estimator requires"), "{algo}: {err}");
        }
        let err = with("sampled:4", &["--estimator", "median"]).unwrap_err();
        assert!(err.contains("unknown estimator"), "{err}");
        // Refined aggregation and stress both widen the Phase D message.
        let err = with("sampled:4", &["--estimator", "jiyan", "--stress"]).unwrap_err();
        assert!(err.contains("--stress"), "{err}");
        // serve accepts the same pair.
        match p(&[
            "serve",
            "--listen",
            "tcp:a:1",
            "--generate",
            "path:8",
            "--algorithm",
            "sampled:4",
            "--estimator",
            "jiyan",
        ])
        .unwrap()
        {
            Command::Serve { estimator, .. } => assert_eq!(estimator, Estimator::JiYan),
            other => panic!("unexpected parse: {other:?}"),
        }
        let err = p(&[
            "serve",
            "--listen",
            "tcp:a:1",
            "--generate",
            "path:8",
            "--estimator",
            "jiyan",
        ])
        .unwrap_err();
        assert!(err.contains("--estimator requires"), "{err}");
    }

    #[test]
    fn parses_telemetry_flags() {
        let c = p(&[
            "centrality",
            "--generate",
            "path:8",
            "--perfetto",
            "run.perfetto.json",
            "--watch",
            "--postmortem",
            "pm.json",
        ])
        .unwrap();
        match c {
            Command::Centrality {
                perfetto,
                watch,
                postmortem,
                no_telemetry,
                ..
            } => {
                assert_eq!(perfetto.as_deref(), Some("run.perfetto.json"));
                assert!(watch);
                assert_eq!(postmortem.as_deref(), Some("pm.json"));
                assert!(!no_telemetry);
            }
            other => panic!("unexpected parse: {other:?}"),
        }
        // Telemetry consumers are distributed-engine features.
        assert!(p(&[
            "centrality",
            "--generate",
            "path:8",
            "--algorithm",
            "brandes",
            "--perfetto",
            "t.json",
        ])
        .is_err());
        assert!(p(&[
            "centrality",
            "--generate",
            "path:8",
            "--algorithm",
            "brandes",
            "--watch",
        ])
        .is_err());
        // The watch line and postmortems read the registry --no-telemetry
        // removes.
        assert!(p(&[
            "centrality",
            "--generate",
            "path:8",
            "--no-telemetry",
            "--watch"
        ])
        .is_err());
        assert!(p(&[
            "centrality",
            "--generate",
            "path:8",
            "--no-telemetry",
            "--postmortem",
            "pm.json",
        ])
        .is_err());
        // --no-telemetry alone (and with --perfetto, which reads the
        // profiler, not the registry) is fine.
        assert!(p(&["centrality", "--generate", "path:8", "--no-telemetry"]).is_ok());
        assert!(p(&[
            "centrality",
            "--generate",
            "path:8",
            "--no-telemetry",
            "--perfetto",
            "t.json",
        ])
        .is_ok());
        assert!(p(&["centrality", "--generate", "path:8", "--perfetto"]).is_err());
    }

    #[test]
    fn parses_threads_auto_and_partition() {
        let c = p(&[
            "centrality",
            "--generate",
            "path:8",
            "--threads",
            "auto",
            "--partition",
            "degree",
        ])
        .unwrap();
        match c {
            Command::Centrality {
                threads, partition, ..
            } => {
                assert_eq!(threads, ThreadSpec::Auto);
                assert_eq!(partition, PartitionStrategy::DegreeBalanced);
            }
            other => panic!("unexpected parse: {other:?}"),
        }
        let c = p(&[
            "centrality",
            "--generate",
            "path:8",
            "--partition",
            "schedule",
        ])
        .unwrap();
        match c {
            Command::Centrality { partition, .. } => {
                assert_eq!(partition, PartitionStrategy::ScheduleAware);
            }
            other => panic!("unexpected parse: {other:?}"),
        }
        assert!(p(&["centrality", "--generate", "path:8", "--partition", "x"]).is_err());
        assert!(p(&["centrality", "--generate", "path:8", "--threads", "soon"]).is_err());
    }

    #[test]
    fn parses_fault_flags() {
        let c = p(&[
            "centrality",
            "--generate",
            "path:8",
            "--faults",
            "drop=0.1,dup=0.05",
            "--fault-seed",
            "42",
            "--reliable",
        ])
        .unwrap();
        match c {
            Command::Centrality {
                faults: Some(plan),
                reliable,
                best_effort,
                ..
            } => {
                assert_eq!(plan.seed, 42, "--fault-seed overrides the plan seed");
                assert!((plan.drop - 0.1).abs() < 1e-12);
                assert!((plan.duplicate - 0.05).abs() < 1e-12);
                assert!(reliable);
                assert!(!best_effort);
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn rejects_incompatible_fault_flag_combos() {
        // --faults needs --reliable or --best-effort.
        assert!(p(&["centrality", "--generate", "path:8", "--faults", "drop=0.1"]).is_err());
        // --fault-seed / --best-effort are meaningless without --faults.
        assert!(p(&["centrality", "--generate", "path:8", "--fault-seed", "3"]).is_err());
        assert!(p(&["centrality", "--generate", "path:8", "--best-effort"]).is_err());
        // fault injection is a distributed-engine feature.
        assert!(p(&[
            "centrality",
            "--generate",
            "path:8",
            "--algorithm",
            "brandes",
            "--faults",
            "drop=0.1",
            "--reliable",
        ])
        .is_err());
        assert!(p(&[
            "centrality",
            "--generate",
            "path:8",
            "--algorithm",
            "brandes",
            "--reliable",
        ])
        .is_err());
        // malformed plan specs are caught at parse time.
        assert!(p(&[
            "centrality",
            "--generate",
            "path:8",
            "--faults",
            "drop=lots",
            "--reliable",
        ])
        .is_err());
        // the --best-effort escape hatch allows a raw faulty run.
        assert!(p(&[
            "centrality",
            "--generate",
            "path:8",
            "--faults",
            "drop=0.1",
            "--best-effort",
        ])
        .is_ok());
    }

    #[test]
    fn non_distributed_flag_combos_rejected_at_parse_time() {
        assert!(p(&[
            "centrality",
            "--generate",
            "path:8",
            "--algorithm",
            "brandes",
            "--profile",
        ])
        .is_err());
        assert!(p(&["centrality", "--generate", "path:8", "--json"]).is_err());
    }

    #[test]
    fn parses_profile_and_json() {
        match p(&["centrality", "--generate", "path:5", "--profile", "--json"]).unwrap() {
            Command::Centrality { profile, json, .. } => {
                assert!(profile);
                assert!(json);
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn parses_trace_stats() {
        assert_eq!(
            p(&["trace-stats", "run.jsonl", "--json", "--top", "3"]).unwrap(),
            Command::TraceStats {
                file: "run.jsonl".into(),
                csv: false,
                json: true,
                top: 3,
            }
        );
        assert!(p(&["trace-stats"]).is_err());
        assert!(p(&["trace-stats", "run.jsonl", "--csv", "--json"]).is_err());
    }

    #[test]
    fn parses_trace_and_metrics() {
        let c = p(&[
            "centrality",
            "--generate",
            "path:5",
            "--trace",
            "run.jsonl",
            "--metrics",
        ])
        .unwrap();
        match c {
            Command::Centrality { trace, metrics, .. } => {
                assert_eq!(trace.as_deref(), Some("run.jsonl"));
                assert!(metrics);
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn parses_check_trace() {
        assert_eq!(
            p(&["check-trace", "run.jsonl"]).unwrap(),
            Command::CheckTrace {
                file: "run.jsonl".into()
            }
        );
        assert!(p(&["check-trace"]).is_err());
    }

    #[test]
    fn parses_gadget() {
        let c = p(&["gadget", "--kind", "bc", "--n", "6", "--planted"]).unwrap();
        assert_eq!(
            c,
            Command::Gadget {
                kind: GadgetKind::Bc,
                n: 6,
                x: 8,
                planted: true
            }
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(p(&["centrality"]).is_err());
        assert!(p(&["frobnicate"]).is_err());
        assert!(p(&["centrality", "--generate", "x", "--algorithm", "magic"]).is_err());
        assert!(p(&["info", "--input"]).is_err());
        assert!(p(&["gadget", "--kind", "bc"]).is_err());
    }

    #[test]
    fn help_paths() {
        assert_eq!(p(&[]).unwrap(), Command::Help);
        assert_eq!(p(&["help"]).unwrap(), Command::Help);
        assert_eq!(p(&["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn generator_specs() {
        assert_eq!(generate("path:5").unwrap().n(), 5);
        assert_eq!(generate("grid:3:4").unwrap().n(), 12);
        assert_eq!(generate("karate").unwrap().n(), 34);
        assert_eq!(generate("florentine").unwrap().n(), 15);
        assert_eq!(generate("er:30:0.1:1").unwrap().n(), 30);
        assert!(generate("er:30").is_err());
        assert!(generate("nope:1").is_err());
        assert!(generate("path:x").is_err());
    }
}
