//! **distbc** — a reproduction of *Nearly Optimal Distributed Algorithm for
//! Computing Betweenness Centrality* (Hua, Fan, Ai, Qian, Li, Shi, Jin;
//! IEEE ICDCS 2016).
//!
//! The paper gives the first deterministic `O(N)`-round algorithm for
//! computing the betweenness centrality of every node of an undirected,
//! unweighted graph in the CONGEST model, plus a matching
//! `Ω(D + N/log N)` lower bound. This workspace implements the whole
//! stack from scratch:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`graph`] (`bc-graph`) | CSR graphs, generators, BFS/diameter, I/O |
//! | [`congest`] (`bc-congest`) | bit-accounted synchronous CONGEST simulator |
//! | [`numeric`] (`bc-numeric`) | the paper's `L`-bit ceiling floats, bignums, exact rationals |
//! | [`brandes`] (`bc-brandes`) | centralized Brandes (f64 / exact / CeilFloat), naive `O(N³)`, other centralities, sampling approximations |
//! | [`core`] (`bc-core`) | **the paper's algorithm**: pipelined counting + collision-free aggregation |
//! | [`lowerbound`] (`bc-lowerbound`) | the Figure 2/3 gadgets and cut-flow measurements |
//! | [`serve`] (`bc-serve`) | long-running query server over versioned snapshots with incremental recompute |
//!
//! # Quickstart
//!
//! ```
//! use distbc::core::{run_distributed_bc, DistBcConfig};
//! use distbc::brandes::betweenness_f64;
//! use distbc::graph::generators;
//!
//! let g = generators::erdos_renyi_connected(50, 0.08, 42);
//! let distributed = run_distributed_bc(&g, DistBcConfig::default())?;
//! let centralized = betweenness_f64(&g);
//! for (d, c) in distributed.betweenness.iter().zip(&centralized) {
//!     assert!((d - c).abs() <= 1e-2 * (1.0 + c));
//! }
//! assert!(distributed.metrics.congest_compliant());
//! # Ok::<(), distbc::core::DistBcError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bc_brandes as brandes;
pub use bc_congest as congest;
pub use bc_core as core;
pub use bc_graph as graph;
pub use bc_lowerbound as lowerbound;
pub use bc_numeric as numeric;
pub use bc_serve as serve;
